package core

import (
	"math/rand"
	"testing"

	"timebounds/internal/model"
	"timebounds/internal/types"
)

// TestLifecycleFullCrossProduct enumerates every (state, event) pair and
// asserts it is either an allowed transition matching the expected table or
// an explicit rejection — never silence, never a panic.
func TestLifecycleFullCrossProduct(t *testing.T) {
	type key struct {
		s  LifecycleState
		ev LifecycleEvent
	}
	allowed := map[key]LifecycleState{
		{StateJoining, EvAdmit}:     StateSyncing,
		{StateSyncing, EvSynced}:    StateServing,
		{StateSuspected, EvRecover}: StateRecovering,
		{StateRecovering, EvResync}: StateSyncing,

		{StateJoining, EvCrash}: StateSuspected,
		{StateSyncing, EvCrash}: StateSuspected,
		{StateServing, EvCrash}: StateSuspected,

		{StateJoining, EvRetire}:    StateRetired,
		{StateSyncing, EvRetire}:    StateRetired,
		{StateServing, EvRetire}:    StateRetired,
		{StateSuspected, EvRetire}:  StateRetired,
		{StateRecovering, EvRetire}: StateRetired,
	}
	covered := 0
	for _, s := range LifecycleStates() {
		for _, ev := range LifecycleEvents() {
			covered++
			next, err := Resolve(s, ev)
			if want, ok := allowed[key{s, ev}]; ok {
				if err != nil {
					t.Errorf("(%s, %s): want %s, got rejection %v", s, ev, want, err)
				} else if next != want {
					t.Errorf("(%s, %s): want %s, got %s", s, ev, want, next)
				}
				continue
			}
			if err == nil {
				t.Errorf("(%s, %s): want explicit rejection, got transition to %s", s, ev, next)
			}
			if next != s {
				t.Errorf("(%s, %s): rejection must not move the state (got %s)", s, ev, next)
			}
		}
	}
	if want := len(LifecycleStates()) * len(LifecycleEvents()); covered != want {
		t.Fatalf("covered %d pairs, want %d", covered, want)
	}
}

// TestLifecycleRetiredNeverServes drives random event sequences and asserts
// the invariant: once retired, a lifecycle never reaches serving (or any
// other state) again.
func TestLifecycleRetiredNeverServes(t *testing.T) {
	events := LifecycleEvents()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 500; trial++ {
		l := NewLifecycle()
		retired := false
		for step := 0; step < 40; step++ {
			ev := events[rng.Intn(len(events))]
			err := l.Fire(ev, model.Time(step))
			if retired {
				if err == nil {
					t.Fatalf("trial %d: event %s accepted after retirement", trial, ev)
				}
				if l.State() != StateRetired {
					t.Fatalf("trial %d: left retired via %s to %s", trial, ev, l.State())
				}
				continue
			}
			if l.State() == StateRetired {
				retired = true
			}
		}
	}
}

// TestLifecycleSuperstates pins the leaf→superstate mapping.
func TestLifecycleSuperstates(t *testing.T) {
	want := map[LifecycleState]SuperState{
		StateJoining:    SuperActive,
		StateSyncing:    SuperActive,
		StateServing:    SuperActive,
		StateSuspected:  SuperFaulted,
		StateRecovering: SuperFaulted,
		StateRetired:    SuperRetired,
	}
	for s, sup := range want {
		if got := s.Super(); got != sup {
			t.Errorf("%s.Super() = %s, want %s", s, got, sup)
		}
	}
}

// TestLifecycleHookOrder asserts the HSM action order on a superstate
// change: exit leaf, exit super, enter super, enter leaf — and that the
// super hooks stay silent when the superstate does not change.
func TestLifecycleHookOrder(t *testing.T) {
	l := NewLifecycle()
	var seq []string
	l.OnExit = func(s LifecycleState, _ model.Time) { seq = append(seq, "exit:"+s.String()) }
	l.OnEnter = func(s LifecycleState, _ model.Time) { seq = append(seq, "enter:"+s.String()) }
	l.OnExitSuper = func(s SuperState, _ model.Time) { seq = append(seq, "exitSuper:"+s.String()) }
	l.OnEnterSuper = func(s SuperState, _ model.Time) { seq = append(seq, "enterSuper:"+s.String()) }

	if err := l.Fire(EvAdmit, 0); err != nil {
		t.Fatal(err)
	}
	wantSame := []string{"exit:joining", "enter:syncing"}
	if len(seq) != len(wantSame) || seq[0] != wantSame[0] || seq[1] != wantSame[1] {
		t.Fatalf("same-super hooks = %v, want %v", seq, wantSame)
	}

	seq = nil
	_ = l.Fire(EvSynced, 1)
	seq = nil
	if err := l.Fire(EvCrash, 2); err != nil {
		t.Fatal(err)
	}
	want := []string{"exit:serving", "exitSuper:active", "enterSuper:faulted", "enter:suspected"}
	if len(seq) != len(want) {
		t.Fatalf("cross-super hooks = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("cross-super hooks = %v, want %v", seq, want)
		}
	}
}

// TestReplicaBornServing pins the constructor's pass-through: a fresh
// replica has already walked joining → syncing → serving.
func TestReplicaBornServing(t *testing.T) {
	r := NewReplica(Config{Params: model.Params{N: 3, D: 10, U: 2, Epsilon: 1}}, types.NewRegister(0))
	if got := r.LifecycleState(); got != StateServing {
		t.Fatalf("fresh replica state = %s, want serving", got)
	}
}
