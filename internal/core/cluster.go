package core

import (
	"fmt"

	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
)

// Cluster wires n Algorithm 1 replicas of one data type into a simulator,
// offering a small scheduling API for tests, examples and benchmarks.
type Cluster struct {
	cfg      Config
	dt       spec.DataType
	replicas []*Replica
	sim      *sim.Simulator
}

// NewCluster builds a cluster of cfg.Params.N replicas of dt.
// simCfg.Params is overwritten with cfg.Params; other sim options (delay
// policy, clock offsets, strictness) pass through.
func NewCluster(cfg Config, dt spec.DataType, simCfg sim.Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	simCfg.Params = cfg.Params
	replicas := make([]*Replica, cfg.Params.N)
	procs := make([]sim.Process, cfg.Params.N)
	for i := range replicas {
		replicas[i] = NewReplica(cfg, dt)
		procs[i] = replicas[i]
	}
	s, err := sim.New(simCfg, procs)
	if err != nil {
		return nil, err
	}
	return &Cluster{cfg: cfg, dt: dt, replicas: replicas, sim: s}, nil
}

// Invoke schedules an operation at real time at on process proc.
func (c *Cluster) Invoke(at model.Time, proc model.ProcessID, kind spec.OpKind, arg spec.Value) {
	c.sim.Invoke(at, proc, kind, arg)
}

// Run drives the simulation to quiescence (or the horizon).
func (c *Cluster) Run(horizon model.Time) error { return c.sim.Run(horizon) }

// History returns the recorded invocation/response history.
func (c *Cluster) History() *history.History { return c.sim.History() }

// Simulator exposes the underlying simulator (message/step traces).
func (c *Cluster) Simulator() *sim.Simulator { return c.sim }

// DataType returns the replicated data type.
func (c *Cluster) DataType() spec.DataType { return c.dt }

// Replica returns the i-th replica, for state inspection in tests.
func (c *Cluster) Replica(i int) *Replica { return c.replicas[i] }

// ConvergedState returns the common canonical local-state encoding of the
// serving replicas, or an error if they diverged (they must agree once the
// run is quiescent and all operations executed everywhere). Replicas that
// are not serving — crashed, retired, or stuck re-syncing — are not
// authoritative copies and are excluded; a cluster with no serving replica
// has no state to report. In a fault-free run every replica is serving, so
// this degrades to the all-replicas comparison.
func (c *Cluster) ConvergedState() (string, error) {
	ref := -1
	var enc string
	for i, r := range c.replicas {
		if r.LifecycleState() != StateServing {
			continue
		}
		got := r.LocalStateEncoding()
		if ref < 0 {
			ref, enc = i, got
			continue
		}
		if got != enc {
			return "", fmt.Errorf("core: replica %d state %q != replica %d state %q", i, got, ref, enc)
		}
	}
	if ref < 0 {
		return "", fmt.Errorf("core: no serving replica left to report a state")
	}
	return enc, nil
}

// MaxSkewOffsets returns clock offsets that realize the worst admissible
// skew for n processes under ε: process 0 at +ε/2, the rest at -ε/2…
// spread evenly. Useful for stress tests.
func MaxSkewOffsets(p model.Params) []model.Time {
	offs := make([]model.Time, p.N)
	if p.N < 2 {
		return offs
	}
	for i := range offs {
		// Evenly spaced in [-ε/2, +ε/2].
		offs[i] = -p.Epsilon/2 + model.Time(int64(p.Epsilon)*int64(i)/int64(p.N-1))
	}
	return offs
}
