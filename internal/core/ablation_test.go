package core

// Ablation tests: each of Algorithm 1's wait rules is load-bearing. For
// every rule we construct an admissible scenario in which removing (or
// shortening) just that rule produces a checker-certified violation or
// replica divergence, while the full algorithm stays correct on the exact
// same scenario.

import (
	"testing"

	"timebounds/internal/check"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/types"
)

// selfAddScenario races two RMWs so that the d-u self-insertion delay is
// the only thing keeping timestamp order and execution order aligned:
// p1's clock runs ε behind, it stamps just below p0's stamp, and its
// message takes the full d.
func selfAddScenario(t *testing.T, tuning Tuning) *Cluster {
	t.Helper()
	p := testParams(3)
	offsets := []model.Time{0, -p.Epsilon, 0}
	c := mustCluster(t, Config{Params: p, Tuning: tuning}, types.NewRMWRegister(0), sim.Config{
		ClockOffsets: offsets,
		Delay:        sim.FixedDelay(p.D),
		StrictDelays: true,
	})
	base := 4 * p.D
	// p0 stamps ⟨base, 0⟩; p1 invokes at base+ε-1 and stamps ⟨base-1, 1⟩ —
	// the smaller timestamp — but its broadcast lands at base+ε-1+d, after
	// a premature p0 would already have executed its own operation.
	c.Invoke(base, 0, types.OpRMW, 1)
	c.Invoke(base+p.Epsilon-1, 1, types.OpRMW, 2)
	return c
}

func TestAblationSelfAddDelayIsLoadBearing(t *testing.T) {
	// Premature: insert own operations immediately instead of waiting d-u.
	premature := Tuning{SelfAddDelay: OverrideTime{Override: true, Value: 0}}
	c := selfAddScenario(t, premature)
	runToQuiescence(t, c)
	if res := check.Check(c.DataType(), c.History()); res.Linearizable {
		t.Errorf("removing the d-u self-add delay should break this scenario:\n%s", c.History())
	}

	// Full algorithm on the identical scenario: correct.
	c = selfAddScenario(t, Tuning{})
	runToQuiescence(t, c)
	if res := check.Check(c.DataType(), c.History()); !res.Linearizable {
		t.Errorf("full algorithm failed the self-add scenario:\n%s", c.History())
	}
}

// executeWaitScenario races a remote operation against the u+ε hold time:
// an entry arriving via a fast message (d-u) must still wait u+ε, because
// a smaller-stamped entry may arrive a full u later.
func executeWaitScenario(t *testing.T, tuning Tuning) *Cluster {
	t.Helper()
	p := testParams(3)
	offsets := []model.Time{0, -p.Epsilon, 0}
	delay := sim.NewMatrixDelay(p.N, p.D)
	// p0's broadcasts travel fastest; p1's slowest.
	delay.Set(0, 2, p.MinDelay())
	delay.Set(1, 2, p.D)
	c := mustCluster(t, Config{Params: p, Tuning: tuning}, types.NewRMWRegister(0), sim.Config{
		ClockOffsets: offsets,
		Delay:        delay,
		StrictDelays: true,
	})
	base := 4 * p.D
	// Both stamp near-identical clocks; p1's (smaller ⟨base-1, 1⟩) arrives
	// at p2 a full u after p0's ⟨base, 0⟩. A p2 that executes p0's entry
	// without the u+ε hold applies the larger stamp first and diverges.
	c.Invoke(base, 0, types.OpRMW, 1)
	c.Invoke(base+p.Epsilon-1, 1, types.OpRMW, 2)
	// p2 observes the result once everything settles.
	c.Invoke(base+10*p.D, 2, types.OpRead, nil)
	return c
}

func TestAblationExecuteWaitIsLoadBearing(t *testing.T) {
	premature := Tuning{ExecuteWait: OverrideTime{Override: true, Value: 0}}
	c := executeWaitScenario(t, premature)
	runToQuiescence(t, c)
	_, convErr := c.ConvergedState()
	res := check.Check(c.DataType(), c.History())
	if res.Linearizable && convErr == nil {
		t.Errorf("removing the u+ε hold should break ordering:\n%s", c.History())
	}

	c = executeWaitScenario(t, Tuning{})
	runToQuiescence(t, c)
	if res := check.Check(c.DataType(), c.History()); !res.Linearizable {
		t.Errorf("full algorithm failed the execute-wait scenario:\n%s", c.History())
	}
	if _, err := c.ConvergedState(); err != nil {
		t.Errorf("full algorithm diverged: %v", err)
	}
}

// accessorScenario: a read that responds before d+ε-X may miss a write
// that completed (ε+X) before the read began — Theorem E.1's mechanism.
func accessorScenario(t *testing.T, tuning Tuning) *Cluster {
	t.Helper()
	p := testParams(3)
	offsets := []model.Time{-p.Epsilon, 0, 0}
	c := mustCluster(t, Config{Params: p, Tuning: tuning}, types.NewRegister(0), sim.Config{
		ClockOffsets: offsets,
		Delay:        sim.FixedDelay(p.D),
		StrictDelays: true,
	})
	base := 4 * p.D
	c.Invoke(base, 1, types.OpWrite, 7)
	// Read begins strictly after the write's ε+X response.
	c.Invoke(base+p.Epsilon+1, 0, types.OpRead, nil)
	return c
}

func TestAblationAccessorResponseIsLoadBearing(t *testing.T) {
	p := testParams(3)
	premature := Tuning{AccessorResponse: OverrideTime{Override: true, Value: p.D - p.U}}
	c := accessorScenario(t, premature)
	runToQuiescence(t, c)
	if res := check.Check(c.DataType(), c.History()); res.Linearizable {
		t.Errorf("shortening the accessor response below d+ε-X should miss the write:\n%s", c.History())
	}

	c = accessorScenario(t, Tuning{})
	runToQuiescence(t, c)
	if res := check.Check(c.DataType(), c.History()); !res.Linearizable {
		t.Errorf("full algorithm failed the accessor scenario:\n%s", c.History())
	}
}

// TestAblationMutatorResponseIsLoadBearing reuses the Theorem E.1 insight
// directly at the core level: a mutator acknowledging before ε+X lets a
// same-process accessor pair order incorrectly across processes.
func TestAblationMutatorResponseIsLoadBearing(t *testing.T) {
	p := testParams(3)
	scenario := func(tuning Tuning) *Cluster {
		offsets := []model.Time{-p.Epsilon, 0, 0}
		c := mustCluster(t, Config{Params: p, Tuning: tuning}, types.NewQueue(), sim.Config{
			ClockOffsets: offsets,
			Delay:        sim.FixedDelay(p.D),
			StrictDelays: true,
		})
		base := 4 * p.D
		c.Invoke(base, 1, types.OpEnqueue, "x")
		// Peek begins right after the (possibly premature) enqueue ack.
		c.Invoke(base+1, 0, types.OpPeek, nil)
		return c
	}
	premature := Tuning{MutatorResponse: OverrideTime{Override: true, Value: 0}}
	c := scenario(premature)
	runToQuiescence(t, c)
	if res := check.Check(c.DataType(), c.History()); res.Linearizable {
		t.Errorf("zero-latency mutator ack should break the pair:\n%s", c.History())
	}

	// Full algorithm: the peek at base+1 is concurrent with the enqueue
	// (which responds at base+ε), so either return is linearizable.
	c = scenario(Tuning{})
	runToQuiescence(t, c)
	if res := check.Check(c.DataType(), c.History()); !res.Linearizable {
		t.Errorf("full algorithm failed the mutator scenario:\n%s", c.History())
	}
}
