package core

import (
	"testing"

	"timebounds/internal/check"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/types"
)

func TestXExtremesEndToEnd(t *testing.T) {
	// At X=0 mutators respond in ε; at X=d+ε-u accessors respond in u —
	// the two endpoints Chapter V.D calls out — and both extremes stay
	// linearizable under adversarial delays.
	p := testParams(4)
	for _, x := range []model.Time{0, p.D + p.Epsilon - p.U} {
		dt := types.NewRegister(0)
		c := mustCluster(t, Config{Params: p, X: x}, dt, sim.Config{
			ClockOffsets: MaxSkewOffsets(p),
			Delay:        sim.FixedDelay(p.D),
			StrictDelays: true,
		})
		c.Invoke(p.D, 0, types.OpWrite, 1)
		c.Invoke(5*p.D, 1, types.OpRead, nil)
		runToQuiescence(t, c)
		wantW := p.Epsilon + x
		wantR := p.D + p.Epsilon - x
		if got, _ := c.History().MaxLatency(types.OpWrite); got != wantW {
			t.Errorf("X=%s: write latency %s, want %s", x, got, wantW)
		}
		if got, _ := c.History().MaxLatency(types.OpRead); got != wantR {
			t.Errorf("X=%s: read latency %s, want %s", x, got, wantR)
		}
		if res := check.Check(dt, c.History()); !res.Linearizable {
			t.Errorf("X=%s: not linearizable:\n%s", x, c.History())
		}
	}
	// At X = d+ε-u the accessor latency equals exactly u (§V.D).
	xMax := p.D + p.Epsilon - p.U
	if got := p.D + p.Epsilon - xMax; got != p.U {
		t.Errorf("accessor floor %s, want u = %s", got, p.U)
	}
}

func TestDeferredInvocationChain(t *testing.T) {
	// Scheduling many operations at the same instant on one process must
	// serialize them back-to-back (one pending op per process) and remain
	// linearizable.
	p := testParams(3)
	dt := types.NewQueue()
	c := mustCluster(t, Config{Params: p}, dt, sim.Config{
		Delay:        sim.FixedDelay(p.D),
		StrictDelays: true,
	})
	const n = 5
	for i := 0; i < n; i++ {
		c.Invoke(p.D, 0, types.OpEnqueue, i)
	}
	c.Invoke(20*p.D, 1, types.OpDequeue, nil)
	runToQuiescence(t, c)

	ops := c.History().Ops()
	var prevRespond model.Time
	count := 0
	for _, op := range ops {
		if op.Kind != types.OpEnqueue {
			continue
		}
		if count > 0 && op.Invoke <= prevRespond {
			t.Errorf("enqueue %d invoked at %s, not after previous response %s",
				count, op.Invoke, prevRespond)
		}
		prevRespond = op.Respond
		count++
	}
	if count != n {
		t.Fatalf("%d enqueues completed, want %d", count, n)
	}
	// FIFO: the dequeue takes the first enqueue's value.
	for _, op := range ops {
		if op.Kind == types.OpDequeue && !valueIs(op.Ret, 0) {
			t.Errorf("dequeue returned %v, want 0", op.Ret)
		}
	}
	if res := check.Check(dt, c.History()); !res.Linearizable {
		t.Errorf("not linearizable:\n%s", c.History())
	}
}

func valueIs(v any, want int) bool {
	got, ok := v.(int)
	return ok && got == want
}

func TestOOPRespondsAtLocalExecution(t *testing.T) {
	// An OOP operation responds exactly when the invoker's copy executes
	// it: (d-u) self-add + (u+ε) hold = d+ε with zero skew.
	p := testParams(3)
	dt := types.NewRMWRegister(0)
	c := mustCluster(t, Config{Params: p}, dt, sim.Config{
		Delay:        sim.FixedDelay(p.D),
		StrictDelays: true,
	})
	c.Invoke(p.D, 0, types.OpRMW, 5)
	runToQuiescence(t, c)
	if got, _ := c.History().MaxLatency(types.OpRMW); got != p.D+p.Epsilon {
		t.Errorf("solo rmw latency %s, want exactly d+ε = %s", got, p.D+p.Epsilon)
	}
	if c.Replica(0).Applied() != 1 {
		t.Errorf("invoker applied %d ops, want 1", c.Replica(0).Applied())
	}
}

func TestAppliedCountsConvergeAcrossReplicas(t *testing.T) {
	p := testParams(3)
	dt := types.NewQueue()
	c := mustCluster(t, Config{Params: p}, dt, sim.Config{
		Delay:        sim.NewRandomDelay(13, p.MinDelay(), p.D),
		StrictDelays: true,
	})
	for i := 0; i < 6; i++ {
		c.Invoke(model.Time(i)*p.D, model.ProcessID(i%3), types.OpEnqueue, i)
	}
	runToQuiescence(t, c)
	want := c.Replica(0).Applied()
	for i := 1; i < 3; i++ {
		if got := c.Replica(i).Applied(); got != want {
			t.Errorf("replica %d applied %d ops, replica 0 applied %d", i, got, want)
		}
	}
	if want != 6 {
		t.Errorf("applied %d, want 6", want)
	}
}
