// Package core implements Algorithm 1 of Wang (2011), Chapter V: a fast
// linearizable implementation of an arbitrary data type over a partially
// synchronous message-passing system with clocks synchronized to within ε
// and message delays in [d-u, d].
//
// Every process keeps a full copy of the object. Operations are grouped by
// class (spec.OpClass):
//
//   - OOP (mutate-and-observe, e.g. read-modify-write, dequeue, pop):
//     stamped ⟨local clock, pid⟩, broadcast, buffered in a priority queue
//     To_Execute and executed everywhere in timestamp order. The invoker
//     responds when its own copy executes the operation: within d+ε.
//   - MOP (pure mutators, e.g. write, enqueue, push): same totally ordered
//     execution, but the invoker acknowledges after only ε+X, before the
//     operation is applied anywhere.
//   - AOP (pure accessors, e.g. read, peek): never broadcast. Stamped
//     ⟨local clock - X, pid⟩ (pretending to be invoked X earlier), and at
//     d+ε-X after invocation the invoker executes every buffered operation
//     with a smaller timestamp and then evaluates the accessor locally.
//
// X ∈ [0, d+ε-u] trades accessor latency against mutator latency, as in
// Mavronicolas & Roth.
package core

import (
	"container/heap"
	"fmt"

	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
)

// Config configures a replica.
type Config struct {
	// Params are the system timing parameters (n, d, u, ε).
	Params model.Params
	// X is the accessor/mutator tradeoff parameter, in [0, d+ε-u].
	X model.Time
	// Tuning optionally overrides the algorithm's wait durations. Zero
	// value means the proven-correct defaults. Only the adversary
	// experiments (internal/adversary) set this, to build deliberately
	// premature implementations.
	Tuning Tuning
}

// Tuning overrides Algorithm 1's four wait durations. A nil field (Override
// == false) keeps the default. Shrinking any wait below its default
// invalidates the correctness proof — that is exactly what the lower-bound
// experiments exploit.
type Tuning struct {
	// MutatorResponse replaces the ε+X acknowledgment delay of pure
	// mutators when Override is set.
	MutatorResponse OverrideTime
	// AccessorResponse replaces the d+ε-X response delay of pure accessors.
	AccessorResponse OverrideTime
	// ExecuteWait replaces the u+ε hold time between enqueueing an
	// operation into To_Execute and executing it.
	ExecuteWait OverrideTime
	// SelfAddDelay replaces the d-u delay before the invoker inserts its
	// own operation into its To_Execute queue.
	SelfAddDelay OverrideTime
}

// OverrideTime is an optional duration override.
type OverrideTime struct {
	// Override enables the replacement value.
	Override bool
	// Value is the replacement duration.
	Value model.Time
}

// Or returns the override value when set, otherwise def.
func (o OverrideTime) Or(def model.Time) model.Time {
	if o.Override {
		return o.Value
	}
	return def
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	maxX := c.Params.D + c.Params.Epsilon - c.Params.U
	if c.X < 0 || c.X > maxX {
		return fmt.Errorf("core: X=%s outside [0, d+ε-u=%s]", c.X, maxX)
	}
	return nil
}

// entry is one buffered operation in To_Execute: ⟨op, arg, ts⟩.
type entry struct {
	ts   model.Timestamp
	kind spec.OpKind
	arg  spec.Value
}

// opMsg is the broadcast payload for MOP/OOP operations.
type opMsg struct {
	Entry entry
}

// Timer payloads.
type (
	// addSelfTimer fires d-u after a local MOP/OOP invocation: the invoker
	// inserts its own operation into its queue, pretending it arrived via
	// the fastest message (Chapter V.A.1).
	addSelfTimer struct{ e entry }
	// executeTimer fires u+ε after an entry joined To_Execute: every
	// buffered entry with a timestamp ≤ ts is executed in timestamp order.
	executeTimer struct{ ts model.Timestamp }
	// mutatorRespondTimer fires ε+X after a pure-mutator invocation.
	mutatorRespondTimer struct{ id history.OpID }
	// accessorRespondTimer fires d+ε-X after a pure-accessor invocation.
	accessorRespondTimer struct {
		id   history.OpID
		kind spec.OpKind
		arg  spec.Value
		ts   model.Timestamp
	}
)

// execHeap is the priority queue To_Execute, keyed by timestamp.
type execHeap []entry

func (h execHeap) Len() int           { return len(h) }
func (h execHeap) Less(i, j int) bool { return h[i].ts.Less(h[j].ts) }
func (h execHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *execHeap) Push(x any)        { *h = append(*h, x.(entry)) }
func (h *execHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h execHeap) peekMin() (entry, bool) {
	if len(h) == 0 {
		return entry{}, false
	}
	return h[0], true
}

// Replica is one process of Algorithm 1. It implements sim.Process.
type Replica struct {
	cfg       Config
	dt        spec.DataType
	local     spec.State
	toExecute execHeap
	// pendingOOP maps the timestamps of locally invoked OOP operations to
	// their operation ids, so the invoker can respond upon local execution.
	pendingOOP map[model.Timestamp]history.OpID
	// applied counts operations executed on the local copy (diagnostics).
	applied int
}

var _ sim.Process = (*Replica)(nil)

// NewReplica builds one replica of dt under cfg.
func NewReplica(cfg Config, dt spec.DataType) *Replica {
	return &Replica{
		cfg:        cfg,
		dt:         dt,
		local:      dt.InitialState(),
		pendingOOP: make(map[model.Timestamp]history.OpID),
	}
}

// Applied returns the number of operations executed on the local copy.
func (r *Replica) Applied() int { return r.applied }

// LocalStateEncoding returns the canonical encoding of the local copy.
func (r *Replica) LocalStateEncoding() string { return r.dt.EncodeState(r.local) }

// OnInvoke implements sim.Process.
func (r *Replica) OnInvoke(env sim.Env, id history.OpID, kind spec.OpKind, arg spec.Value) {
	p := r.cfg.Params
	switch r.dt.Class(kind) {
	case spec.ClassPureAccessor:
		// Timestamp ⟨clock - X, pid⟩: pretend to be invoked X earlier.
		ts := model.Timestamp{Clock: env.ClockTime() - r.cfg.X, Proc: env.Self()}
		wait := r.cfg.Tuning.AccessorResponse.Or(p.D + p.Epsilon - r.cfg.X)
		env.SetTimerAfter(wait, accessorRespondTimer{id: id, kind: kind, arg: arg, ts: ts})
	case spec.ClassPureMutator:
		r.stampAndBroadcast(env, kind, arg)
		wait := r.cfg.Tuning.MutatorResponse.Or(p.Epsilon + r.cfg.X)
		env.SetTimerAfter(wait, mutatorRespondTimer{id: id})
	default: // OOP
		e := r.stampAndBroadcast(env, kind, arg)
		r.pendingOOP[e.ts] = id
	}
}

// stampAndBroadcast stamps a MOP/OOP operation, broadcasts it, and starts
// the d-u self-insertion timer.
func (r *Replica) stampAndBroadcast(env sim.Env, kind spec.OpKind, arg spec.Value) entry {
	p := r.cfg.Params
	e := entry{
		ts:   model.Timestamp{Clock: env.ClockTime(), Proc: env.Self()},
		kind: kind,
		arg:  arg,
	}
	env.Broadcast(opMsg{Entry: e})
	env.SetTimerAfter(r.cfg.Tuning.SelfAddDelay.Or(p.D-p.U), addSelfTimer{e: e})
	return e
}

// OnMessage implements sim.Process.
func (r *Replica) OnMessage(env sim.Env, _ model.ProcessID, payload any) {
	msg, ok := payload.(opMsg)
	if !ok {
		return
	}
	r.enqueue(env, msg.Entry)
}

// enqueue adds an entry to To_Execute and arms its u+ε execution timer.
func (r *Replica) enqueue(env sim.Env, e entry) {
	p := r.cfg.Params
	heap.Push(&r.toExecute, e)
	env.SetTimerAfter(r.cfg.Tuning.ExecuteWait.Or(p.U+p.Epsilon), executeTimer{ts: e.ts})
}

// OnTimer implements sim.Process.
func (r *Replica) OnTimer(env sim.Env, payload any) {
	switch t := payload.(type) {
	case addSelfTimer:
		r.enqueue(env, t.e)
	case executeTimer:
		r.executeUpTo(env, t.ts, true)
	case mutatorRespondTimer:
		env.Respond(t.id, nil)
	case accessorRespondTimer:
		// Execute every buffered operation with a smaller timestamp, then
		// evaluate the accessor on the local copy.
		r.executeUpTo(env, t.ts, false)
		_, ret := r.dt.Apply(r.local, t.kind, t.arg)
		env.Respond(t.id, ret)
	}
}

// executeUpTo applies every buffered entry with timestamp ≤ ts (inclusive)
// or < ts (when inclusive is false), in timestamp order. Locally invoked
// OOP operations respond as they are applied.
func (r *Replica) executeUpTo(env sim.Env, ts model.Timestamp, inclusive bool) {
	for {
		e, ok := r.toExecute.peekMin()
		if !ok {
			return
		}
		cmp := e.ts.Compare(ts)
		if cmp > 0 || (!inclusive && cmp == 0) {
			return
		}
		heap.Pop(&r.toExecute)
		next, ret := r.dt.Apply(r.local, e.kind, e.arg)
		r.local = next
		r.applied++
		if id, mine := r.pendingOOP[e.ts]; mine && e.ts.Proc == env.Self() {
			delete(r.pendingOOP, e.ts)
			env.Respond(id, ret)
		}
	}
}
