// Package core implements Algorithm 1 of Wang (2011), Chapter V: a fast
// linearizable implementation of an arbitrary data type over a partially
// synchronous message-passing system with clocks synchronized to within ε
// and message delays in [d-u, d].
//
// Every process keeps a full copy of the object. Operations are grouped by
// class (spec.OpClass):
//
//   - OOP (mutate-and-observe, e.g. read-modify-write, dequeue, pop):
//     stamped ⟨local clock, pid⟩, broadcast, buffered in a priority queue
//     To_Execute and executed everywhere in timestamp order. The invoker
//     responds when its own copy executes the operation: within d+ε.
//   - MOP (pure mutators, e.g. write, enqueue, push): same totally ordered
//     execution, but the invoker acknowledges after only ε+X, before the
//     operation is applied anywhere.
//   - AOP (pure accessors, e.g. read, peek): never broadcast. Stamped
//     ⟨local clock - X, pid⟩ (pretending to be invoked X earlier), and at
//     d+ε-X after invocation the invoker executes every buffered operation
//     with a smaller timestamp and then evaluates the accessor locally.
//
// X ∈ [0, d+ε-u] trades accessor latency against mutator latency, as in
// Mavronicolas & Roth.
package core

import (
	"fmt"

	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
)

// Config configures a replica.
type Config struct {
	// Params are the system timing parameters (n, d, u, ε).
	Params model.Params
	// X is the accessor/mutator tradeoff parameter, in [0, d+ε-u].
	X model.Time
	// Tuning optionally overrides the algorithm's wait durations. Zero
	// value means the proven-correct defaults. Only the adversary
	// experiments (internal/adversary) set this, to build deliberately
	// premature implementations.
	Tuning Tuning
}

// Tuning overrides Algorithm 1's four wait durations. A nil field (Override
// == false) keeps the default. Shrinking any wait below its default
// invalidates the correctness proof — that is exactly what the lower-bound
// experiments exploit.
type Tuning struct {
	// MutatorResponse replaces the ε+X acknowledgment delay of pure
	// mutators when Override is set.
	MutatorResponse OverrideTime
	// AccessorResponse replaces the d+ε-X response delay of pure accessors.
	AccessorResponse OverrideTime
	// ExecuteWait replaces the u+ε hold time between enqueueing an
	// operation into To_Execute and executing it.
	ExecuteWait OverrideTime
	// SelfAddDelay replaces the d-u delay before the invoker inserts its
	// own operation into its To_Execute queue.
	SelfAddDelay OverrideTime
}

// OverrideTime is an optional duration override.
type OverrideTime struct {
	// Override enables the replacement value.
	Override bool
	// Value is the replacement duration.
	Value model.Time
}

// Or returns the override value when set, otherwise def.
func (o OverrideTime) Or(def model.Time) model.Time {
	if o.Override {
		return o.Value
	}
	return def
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	maxX := c.Params.D + c.Params.Epsilon - c.Params.U
	if c.X < 0 || c.X > maxX {
		return fmt.Errorf("core: X=%s outside [0, d+ε-u=%s]", c.X, maxX)
	}
	return nil
}

// entry is one buffered operation in To_Execute: ⟨op, arg, ts⟩.
type entry struct {
	ts   model.Timestamp
	kind spec.OpKind
	arg  spec.Value
}

// opMsg is the broadcast payload for MOP/OOP operations.
type opMsg struct {
	Entry entry
}

// syncReq solicits a full state copy from serving peers; a recovering
// replica broadcasts it on restart.
type syncReq struct{}

// syncResp carries a serving replica's current state to a syncing peer.
// States are immutable by the spec.DataType contract ("never mutate a State
// in Apply"), so handing over the reference is safe.
type syncResp struct {
	State spec.State
}

// bufferedInvoke is an invocation that arrived while the replica was
// syncing; it is replayed through OnInvoke once the replica serves again.
type bufferedInvoke struct {
	id   history.OpID
	kind spec.OpKind
	arg  spec.Value
}

// Timer tick payloads. Each timer class fires after a duration that is
// constant for a given replica (d-u, u+ε, ε+X, d+ε-X respectively), so
// timers of one class fire in arming order; the replica keeps the timer's
// data in a per-class FIFO and the payload itself is a zero-size marker —
// boxing a zero-size value into the simulator's `any` payload does not
// allocate, which keeps the per-operation timer traffic allocation-free.
type (
	// selfAddTick fires d-u after a local MOP/OOP invocation: the invoker
	// inserts its own operation into its queue, pretending it arrived via
	// the fastest message (Chapter V.A.1).
	selfAddTick struct{}
	// executeTick fires u+ε after an entry joined To_Execute: every
	// buffered entry with a timestamp ≤ the armed entry's is executed in
	// timestamp order.
	executeTick struct{}
	// mutatorRespondTick fires ε+X after a pure-mutator invocation.
	mutatorRespondTick struct{}
	// accessorRespondTick fires d+ε-X after a pure-accessor invocation.
	accessorRespondTick struct{}
)

// accessorPending is the queued data of one armed accessor response.
type accessorPending struct {
	id   history.OpID
	kind spec.OpKind
	arg  spec.Value
	ts   model.Timestamp
}

// fifo is a head-indexed queue; the backing array is reused once drained,
// so steady-state traffic does not allocate. Each entry carries the local-
// clock time its timer is due: the order-based payload pairing is only
// sound while a class's delay stays constant and nothing cancels its
// timers, so pop asserts the invariant instead of trusting it.
type fifo[T any] struct {
	buf  []timed[T]
	head int
}

type timed[T any] struct {
	due model.Time
	v   T
}

func (f *fifo[T]) push(due model.Time, v T) { f.buf = append(f.buf, timed[T]{due: due, v: v}) }

// reset drops every queued entry (and its payload references), keeping the
// backing array. Used when a crash wipes the replica's volatile state — the
// matching timers die with the restart epoch, so no pop will miss them.
func (f *fifo[T]) reset() {
	clear(f.buf)
	f.buf = f.buf[:0]
	f.head = 0
}

// pop dequeues the oldest entry, asserting it is the one due now — a
// desync (a per-operation tuning or a canceled class timer would cause
// one) must fail loudly, not silently corrupt histories.
func (f *fifo[T]) pop(now model.Time) T {
	it := f.buf[f.head]
	if it.due != now {
		panic(fmt.Sprintf("core: timer FIFO desync: entry due at %s popped at %s "+
			"(a timer class's delay varied, or one of its timers was canceled)", it.due, now))
	}
	f.buf[f.head] = timed[T]{} // drop payload references
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
	return it.v
}

// execHeap is the priority queue To_Execute, keyed by timestamp. It is a
// hand-rolled binary heap: container/heap's `any` interface would box
// every entry on Push and Pop, right on the simulator's hot path.
type execHeap []entry

func (h *execHeap) pushEntry(e entry) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q[i].ts.Less(q[parent].ts) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

func (h *execHeap) popMin() entry {
	q := *h
	n := len(q) - 1
	top := q[0]
	q[0] = q[n]
	q[n] = entry{}
	q = q[:n]
	*h = q
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && q[r].ts.Less(q[l].ts) {
			least = r
		}
		if !q[least].ts.Less(q[i].ts) {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	return top
}

func (h execHeap) peekMin() (entry, bool) {
	if len(h) == 0 {
		return entry{}, false
	}
	return h[0], true
}

// Replica is one process of Algorithm 1. It implements sim.Process.
type Replica struct {
	cfg       Config
	dt        spec.DataType
	local     spec.State
	toExecute execHeap
	// pendingOOP maps the timestamps of locally invoked OOP operations to
	// their operation ids, so the invoker can respond upon local execution.
	pendingOOP map[model.Timestamp]history.OpID
	// applied counts operations executed on the local copy (diagnostics).
	applied int
	// Per-timer-class FIFOs; see the *Tick types.
	selfQ fifo[entry]
	execQ fifo[model.Timestamp]
	mutQ  fifo[history.OpID]
	accQ  fifo[accessorPending]
	// life is the replica's lifecycle HSM (lifecycle.go); the protocol above
	// runs only in the serving state.
	life Lifecycle
	// joinBuf holds invocations that arrived while syncing.
	joinBuf []bufferedInvoke
}

var (
	_ sim.Process     = (*Replica)(nil)
	_ sim.Restartable = (*Replica)(nil)
	_ sim.Retireable  = (*Replica)(nil)
)

// NewReplica builds one replica of dt under cfg. A fresh replica is born
// holding the data type's initial state — the common starting point — so
// its lifecycle passes through joining and syncing without soliciting a
// copy and starts out serving.
func NewReplica(cfg Config, dt spec.DataType) *Replica {
	r := &Replica{
		cfg:        cfg,
		dt:         dt,
		local:      dt.InitialState(),
		pendingOOP: make(map[model.Timestamp]history.OpID),
	}
	r.life = NewLifecycle()
	r.life.OnEnterSuper = r.onEnterSuper
	_ = r.life.Fire(EvAdmit, 0)
	_ = r.life.Fire(EvSynced, 0)
	return r
}

// LifecycleState returns the replica's current lifecycle leaf state.
func (r *Replica) LifecycleState() LifecycleState { return r.life.State() }

// onEnterSuper is the HSM superstate entry action: leaving the active
// superstate (crash or retirement) wipes the volatile protocol state.
func (r *Replica) onEnterSuper(s SuperState, _ model.Time) {
	if s != SuperActive {
		r.dropVolatile()
	}
}

// dropVolatile clears everything a crash loses: the To_Execute buffer, the
// four timer-class FIFOs (their armed timers die with the restart epoch),
// and the locally pending OOP responses. The applied copy of the object is
// lost too, logically — it is re-acquired from a peer on recovery.
func (r *Replica) dropVolatile() {
	clear(r.toExecute)
	r.toExecute = r.toExecute[:0]
	r.selfQ.reset()
	r.execQ.reset()
	r.mutQ.reset()
	r.accQ.reset()
	clear(r.pendingOOP)
	r.joinBuf = r.joinBuf[:0]
}

// Crash implements sim.Restartable: the simulator halted this replica.
func (r *Replica) Crash(at model.Time) { _ = r.life.Fire(EvCrash, at) }

// Recover implements sim.Restartable: the replica restarts, re-enters
// state acquisition and solicits a copy of the object from serving peers.
func (r *Replica) Recover(env sim.Env) {
	now := env.ClockTime()
	if r.life.Fire(EvRecover, now) != nil {
		return
	}
	_ = r.life.Fire(EvResync, now)
	env.Broadcast(syncReq{})
}

// Retire implements sim.Retireable: permanent departure.
func (r *Replica) Retire(at model.Time) { _ = r.life.Fire(EvRetire, at) }

// Applied returns the number of operations executed on the local copy.
func (r *Replica) Applied() int { return r.applied }

// LocalStateEncoding returns the canonical encoding of the local copy.
func (r *Replica) LocalStateEncoding() string { return r.dt.EncodeState(r.local) }

// clampWait floors a (possibly tuned-negative) wait at 0, mirroring
// sim.Env.SetTimerAfter's clamp so FIFO due times match actual fire times.
func clampWait(w model.Time) model.Time {
	if w < 0 {
		return 0
	}
	return w
}

// OnInvoke implements sim.Process.
func (r *Replica) OnInvoke(env sim.Env, id history.OpID, kind spec.OpKind, arg spec.Value) {
	if !r.life.CanServe() {
		// A syncing replica holds the invocation until it serves again; in
		// any other non-serving state the operation stays pending forever
		// (the dichotomy verdict accounts for it).
		if r.life.State() == StateSyncing {
			r.joinBuf = append(r.joinBuf, bufferedInvoke{id: id, kind: kind, arg: arg})
		}
		return
	}
	p := r.cfg.Params
	switch r.dt.Class(kind) {
	case spec.ClassPureAccessor:
		// Timestamp ⟨clock - X, pid⟩: pretend to be invoked X earlier.
		ts := model.Timestamp{Clock: env.ClockTime() - r.cfg.X, Proc: env.Self()}
		wait := clampWait(r.cfg.Tuning.AccessorResponse.Or(p.D + p.Epsilon - r.cfg.X))
		r.accQ.push(env.ClockTime()+wait, accessorPending{id: id, kind: kind, arg: arg, ts: ts})
		env.SetTimerAfter(wait, accessorRespondTick{})
	case spec.ClassPureMutator:
		r.stampAndBroadcast(env, kind, arg)
		wait := clampWait(r.cfg.Tuning.MutatorResponse.Or(p.Epsilon + r.cfg.X))
		r.mutQ.push(env.ClockTime()+wait, id)
		env.SetTimerAfter(wait, mutatorRespondTick{})
	default: // OOP
		e := r.stampAndBroadcast(env, kind, arg)
		r.pendingOOP[e.ts] = id
	}
}

// stampAndBroadcast stamps a MOP/OOP operation, broadcasts it, and starts
// the d-u self-insertion timer.
func (r *Replica) stampAndBroadcast(env sim.Env, kind spec.OpKind, arg spec.Value) entry {
	p := r.cfg.Params
	e := entry{
		ts:   model.Timestamp{Clock: env.ClockTime(), Proc: env.Self()},
		kind: kind,
		arg:  arg,
	}
	env.Broadcast(opMsg{Entry: e})
	wait := clampWait(r.cfg.Tuning.SelfAddDelay.Or(p.D - p.U))
	r.selfQ.push(env.ClockTime()+wait, e)
	env.SetTimerAfter(wait, selfAddTick{})
	return e
}

// OnMessage implements sim.Process.
func (r *Replica) OnMessage(env sim.Env, from model.ProcessID, payload any) {
	switch m := payload.(type) {
	case opMsg:
		// Only a serving replica buffers operations: a syncing one cannot
		// tell whether its eventual donor state already includes this entry,
		// so it drops it — any resulting gap surfaces as divergence in the
		// verdict, not as silent double application.
		if !r.life.CanServe() {
			return
		}
		r.enqueue(env, m.Entry)
	case syncReq:
		if r.life.CanServe() {
			env.Send(from, syncResp{State: r.local})
		}
	case syncResp:
		if r.life.State() != StateSyncing {
			return
		}
		r.local = m.State
		_ = r.life.Fire(EvSynced, env.ClockTime())
		r.drainJoinBuf(env)
	}
}

// drainJoinBuf replays the invocations buffered while syncing through the
// normal invoke path, in arrival order.
func (r *Replica) drainJoinBuf(env sim.Env) {
	if len(r.joinBuf) == 0 {
		return
	}
	buf := r.joinBuf
	r.joinBuf = nil
	for _, b := range buf {
		r.OnInvoke(env, b.id, b.kind, b.arg)
	}
}

// enqueue adds an entry to To_Execute and arms its u+ε execution timer.
func (r *Replica) enqueue(env sim.Env, e entry) {
	p := r.cfg.Params
	r.toExecute.pushEntry(e)
	wait := clampWait(r.cfg.Tuning.ExecuteWait.Or(p.U + p.Epsilon))
	r.execQ.push(env.ClockTime()+wait, e.ts)
	env.SetTimerAfter(wait, executeTick{})
}

// OnTimer implements sim.Process.
func (r *Replica) OnTimer(env sim.Env, payload any) {
	now := env.ClockTime()
	switch payload.(type) {
	case selfAddTick:
		r.enqueue(env, r.selfQ.pop(now))
	case executeTick:
		r.executeUpTo(env, r.execQ.pop(now), true)
	case mutatorRespondTick:
		env.Respond(r.mutQ.pop(now), nil)
	case accessorRespondTick:
		// Execute every buffered operation with a smaller timestamp, then
		// evaluate the accessor on the local copy.
		a := r.accQ.pop(now)
		r.executeUpTo(env, a.ts, false)
		_, ret := r.dt.Apply(r.local, a.kind, a.arg)
		env.Respond(a.id, ret)
	}
}

// executeUpTo applies every buffered entry with timestamp ≤ ts (inclusive)
// or < ts (when inclusive is false), in timestamp order. Locally invoked
// OOP operations respond as they are applied.
func (r *Replica) executeUpTo(env sim.Env, ts model.Timestamp, inclusive bool) {
	for {
		e, ok := r.toExecute.peekMin()
		if !ok {
			return
		}
		cmp := e.ts.Compare(ts)
		if cmp > 0 || (!inclusive && cmp == 0) {
			return
		}
		r.toExecute.popMin()
		next, ret := r.dt.Apply(r.local, e.kind, e.arg)
		r.local = next
		r.applied++
		if id, mine := r.pendingOOP[e.ts]; mine && e.ts.Proc == env.Self() {
			delete(r.pendingOOP, e.ts)
			env.Respond(id, ret)
		}
	}
}
