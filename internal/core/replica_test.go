package core

import (
	"testing"
	"time"

	"timebounds/internal/check"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
	"timebounds/internal/types"
)

func testParams(n int) model.Params {
	p := model.Params{
		N: n,
		D: 10 * time.Millisecond,
		U: 4 * time.Millisecond,
	}
	p.Epsilon = p.OptimalSkew()
	return p
}

func mustCluster(t *testing.T, cfg Config, dt spec.DataType, simCfg sim.Config) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg, dt, simCfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

func runToQuiescence(t *testing.T, c *Cluster) {
	t.Helper()
	if err := c.Run(model.Time(1000) * c.Simulator().Params().D); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !c.History().Complete() {
		t.Fatalf("history incomplete: %d pending\n%s", c.History().PendingCount(), c.History())
	}
}

func TestRegisterSequentialWriteRead(t *testing.T) {
	p := testParams(3)
	dt := types.NewRegister(0)
	c := mustCluster(t, Config{Params: p}, dt, sim.Config{StrictDelays: true})

	c.Invoke(0, 0, types.OpWrite, 42)
	c.Invoke(5*p.D, 1, types.OpRead, nil)
	runToQuiescence(t, c)

	ops := c.History().Ops()
	if len(ops) != 2 {
		t.Fatalf("want 2 ops, got %d", len(ops))
	}
	read := ops[1]
	if read.Kind != types.OpRead {
		t.Fatalf("second op is %s, want read", read.Kind)
	}
	if !spec.ValueEqual(read.Ret, 42) {
		t.Errorf("read returned %v, want 42", read.Ret)
	}
	if res := check.Check(dt, c.History()); !res.Linearizable {
		t.Errorf("history not linearizable:\n%s", c.History())
	}
}

func TestLatenciesMatchChapterVFormulas(t *testing.T) {
	p := testParams(4)
	x := model.Time(2 * time.Millisecond)
	dt := types.NewRMWRegister(0)
	c := mustCluster(t, Config{Params: p, X: x}, dt, sim.Config{
		ClockOffsets: MaxSkewOffsets(p),
		Delay:        sim.FixedDelay(p.D),
		StrictDelays: true,
	})

	c.Invoke(p.D, 0, types.OpWrite, 1)    // mutator: ε+X
	c.Invoke(4*p.D, 1, types.OpRead, nil) // accessor: d+ε-X
	c.Invoke(8*p.D, 2, types.OpRMW, 7)    // OOP: ≤ d+ε
	runToQuiescence(t, c)

	wantMut := p.Epsilon + x
	wantAcc := p.D + p.Epsilon - x
	wantOOP := p.D + p.Epsilon

	if got, _ := c.History().MaxLatency(types.OpWrite); got != wantMut {
		t.Errorf("write latency = %s, want ε+X = %s", got, wantMut)
	}
	if got, _ := c.History().MaxLatency(types.OpRead); got != wantAcc {
		t.Errorf("read latency = %s, want d+ε-X = %s", got, wantAcc)
	}
	if got, _ := c.History().MaxLatency(types.OpRMW); got > wantOOP {
		t.Errorf("rmw latency = %s, want ≤ d+ε = %s", got, wantOOP)
	}
	if res := check.Check(dt, c.History()); !res.Linearizable {
		t.Errorf("history not linearizable:\n%s", c.History())
	}
}

func TestReplicasConverge(t *testing.T) {
	p := testParams(3)
	dt := types.NewQueue()
	c := mustCluster(t, Config{Params: p}, dt, sim.Config{
		Delay:        sim.NewRandomDelay(7, p.MinDelay(), p.D),
		StrictDelays: true,
	})
	for i := 0; i < 5; i++ {
		c.Invoke(model.Time(i)*p.D/2, model.ProcessID(i%3), types.OpEnqueue, i)
	}
	c.Invoke(20*p.D, 0, types.OpDequeue, nil)
	runToQuiescence(t, c)
	// Let stragglers flush: drive remaining timers/messages to quiescence
	// already done by Run. All replicas must agree.
	if _, err := c.ConvergedState(); err != nil {
		t.Fatalf("replicas diverged: %v", err)
	}
	if res := check.Check(dt, c.History()); !res.Linearizable {
		t.Errorf("history not linearizable:\n%s", c.History())
	}
}

func TestConcurrentRMWsLinearizable(t *testing.T) {
	p := testParams(3)
	dt := types.NewRMWRegister(0)
	c := mustCluster(t, Config{Params: p}, dt, sim.Config{
		ClockOffsets: MaxSkewOffsets(p),
		Delay:        sim.ExtremalDelay{Params: p},
		StrictDelays: true,
	})
	base := 2 * p.D
	c.Invoke(base, 0, types.OpRMW, 10)
	c.Invoke(base, 1, types.OpRMW, 20)
	c.Invoke(base+p.Epsilon/2, 2, types.OpRMW, 30)
	runToQuiescence(t, c)
	if res := check.Check(dt, c.History()); !res.Linearizable {
		t.Fatalf("concurrent RMWs not linearizable:\n%s", c.History())
	}
	if _, err := c.ConvergedState(); err != nil {
		t.Fatalf("replicas diverged: %v", err)
	}
}

func TestMutatorsOrderedByRealTimeAcrossProcesses(t *testing.T) {
	// Two non-overlapping writes from different processes must linearize
	// in real-time order; a read afterwards sees the later one.
	p := testParams(3)
	dt := types.NewRegister(0)
	c := mustCluster(t, Config{Params: p}, dt, sim.Config{
		ClockOffsets: MaxSkewOffsets(p),
		Delay:        sim.FixedDelay(p.D),
		StrictDelays: true,
	})
	c.Invoke(p.D, 0, types.OpWrite, 1)
	// Write 2 begins after write 1's ε+X response completes.
	c.Invoke(p.D+p.Epsilon+1, 1, types.OpWrite, 2)
	c.Invoke(10*p.D, 2, types.OpRead, nil)
	runToQuiescence(t, c)

	var got spec.Value
	for _, op := range c.History().Ops() {
		if op.Kind == types.OpRead {
			got = op.Ret
		}
	}
	if !spec.ValueEqual(got, 2) {
		t.Errorf("read returned %v, want 2 (later write wins)", got)
	}
	if res := check.Check(dt, c.History()); !res.Linearizable {
		t.Errorf("history not linearizable:\n%s", c.History())
	}
}

func TestValidateRejectsBadX(t *testing.T) {
	p := testParams(3)
	cfg := Config{Params: p, X: p.D + p.Epsilon - p.U + 1}
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted X beyond d+ε-u")
	}
	cfg.X = -1
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted negative X")
	}
}
