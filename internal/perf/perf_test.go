package perf_test

import (
	"testing"

	"timebounds/internal/perf"
)

// The tracked benchmarks double as go-test benchmarks, so `make bench`
// and CI's bench smoke exercise exactly what cmd/tbbench records.

func BenchmarkLargeGrid(b *testing.B)            { perf.BenchLargeGrid(b) }
func BenchmarkCheckerLongHistory(b *testing.B)   { perf.BenchCheckerLongHistory(b) }
func BenchmarkCheckerGridHistories(b *testing.B) { perf.BenchCheckerGridHistories(b) }
func BenchmarkSimEventLoop(b *testing.B)         { perf.BenchSimEventLoop(b) }
func BenchmarkShardedStore(b *testing.B)         { perf.BenchShardedStore(b) }
func BenchmarkStreamGrid(b *testing.B)           { perf.BenchStreamGrid(b) }
func BenchmarkSaturationSearch(b *testing.B)     { perf.BenchSaturationSearch(b) }
func BenchmarkCheckerIslandSteady(b *testing.B)  { perf.BenchCheckerIslandSteady(b) }
func BenchmarkZipfStore(b *testing.B)            { perf.BenchZipfStore(b) }
func BenchmarkLiveInprocCluster(b *testing.B)    { perf.BenchLiveInprocCluster(b) }

// TestBenchmarkCatalog pins the tracked-suite names: renaming or removing
// a benchmark breaks comparability of the recorded trajectory, so it must
// be a conscious change here too.
func TestBenchmarkCatalog(t *testing.T) {
	want := []string{
		"engine/large-grid",
		"check/long-history",
		"check/grid-histories",
		"sim/event-loop",
		"engine/sharded-store",
		"engine/stream-grid",
		"study/saturation-search",
		"check/island-steady",
		"engine/zipf-store",
		"live/inproc-cluster",
	}
	got := perf.Benchmarks()
	if len(got) != len(want) {
		t.Fatalf("tracked suite has %d benchmarks, want %d", len(got), len(want))
	}
	for i, bm := range got {
		if bm.Name != want[i] {
			t.Errorf("benchmark %d named %q, want %q", i, bm.Name, want[i])
		}
		if bm.Func == nil {
			t.Errorf("benchmark %q has no body", bm.Name)
		}
	}
}

// TestGridScenariosShape guards the acceptance shape: hundreds of
// scenarios, each verifying a ≥200-operation history.
func TestGridScenariosShape(t *testing.T) {
	scs := perf.GridScenarios()
	if len(scs) < 200 {
		t.Fatalf("large grid has %d scenarios, want ≥ 200", len(scs))
	}
	_, rep := perf.LongHistory()
	if rep.History.Len() < 200 {
		t.Fatalf("long history has %d ops, want ≥ 200", rep.History.Len())
	}
}

// TestZipfStoreScenarioShape guards the zipf-store benchmark's acceptance
// shape: a ≥100k-key streamed universe, a planned migration, and composed
// verification on.
func TestZipfStoreScenarioShape(t *testing.T) {
	ss := perf.ZipfStoreScenario()
	if ss.Workload.KeySpace < 100_000 {
		t.Fatalf("zipf store spans %d keys, want ≥ 100 000", ss.Workload.KeySpace)
	}
	if !ss.Verify {
		t.Fatal("zipf store must verify the composed report")
	}
	if ss.Plan == nil || len(ss.Plan.Migrations) == 0 {
		t.Fatal("zipf store must schedule a migration")
	}
}
