package perf

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"sort"
)

// The trajectory file format (BENCH_<date>.json) and the comparison rules
// behind cmd/tbbench: a File holds recorded Points, oldest first; a Point
// holds one run of the tracked suite. AppendPoint is the only writer — a
// trajectory is history, so an existing file always gains an appended
// point and is never silently truncated or replaced. Compare is the CI
// regression gate: a fresh point against a committed baseline, failing
// beyond a tolerance.

// Schema versions the BENCH_*.json format.
const Schema = "timebounds-bench/v1"

// Measurement is one benchmark's measurements within a point.
type Measurement struct {
	// Name is the tracked benchmark identifier (see Benchmarks).
	Name string `json:"name"`
	// N is the iteration count testing.Benchmark settled on.
	N int `json:"n"`
	// NsPerOp is wall-clock nanoseconds per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are the allocation profile per iteration.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// Metrics carries the benchmark's custom b.ReportMetric values
	// (scenario counts, ops/s, history sizes).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Point is one recorded run of the whole tracked suite.
type Point struct {
	// Label distinguishes points within a file, e.g. "pre-batching
	// baseline" vs "batched+memoized".
	Label string `json:"label"`
	// Date is the recording date (YYYY-MM-DD).
	Date string `json:"date"`
	// Go and MaxProcs pin the toolchain and parallelism the numbers were
	// taken under.
	Go       string `json:"go"`
	MaxProcs int    `json:"maxprocs"`
	// Results are the per-benchmark measurements, in suite order.
	Results []Measurement `json:"results"`
}

// Find returns the named measurement of the point, if recorded.
func (p Point) Find(name string) (Measurement, bool) {
	for _, m := range p.Results {
		if m.Name == name {
			return m, true
		}
	}
	return Measurement{}, false
}

// File is the BENCH_*.json schema: recorded points, oldest first.
type File struct {
	// Schema versions the file format.
	Schema string `json:"schema"`
	// Points are recorded suite runs, oldest first.
	Points []Point `json:"points"`
}

// Latest returns the newest recorded point.
func (f File) Latest() (Point, bool) {
	if len(f.Points) == 0 {
		return Point{}, false
	}
	return f.Points[len(f.Points)-1], true
}

// ReadTrajectory loads and validates a BENCH_*.json file.
func ReadTrajectory(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, fmt.Errorf("perf: read %s: %w", path, err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("perf: %s is not a bench trajectory: %w", path, err)
	}
	if f.Schema != Schema {
		return File{}, fmt.Errorf("perf: %s has schema %q, want %q", path, f.Schema, Schema)
	}
	return f, nil
}

// AppendPoint records pt in the trajectory at path and returns the
// written file. An existing trajectory gains an appended point — history
// is never silently truncated (overwrite starts the file over). An
// existing file that cannot be read or parsed is an error, never an
// empty trajectory.
func AppendPoint(path string, pt Point, overwrite bool) (File, error) {
	f := File{Schema: Schema}
	if !overwrite {
		switch existing, err := ReadTrajectory(path); {
		case err == nil:
			f = existing
		case errors.Is(err, fs.ErrNotExist):
			// Fresh file.
		default:
			// An existing-but-unreadable trajectory must never be
			// silently replaced by a single fresh point.
			return File{}, err
		}
	}
	f.Points = append(f.Points, pt)
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return File{}, fmt.Errorf("perf: encode trajectory: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return File{}, fmt.Errorf("perf: write %s: %w", path, err)
	}
	return f, nil
}

// Regression is one benchmark metric that got slower than the baseline
// allows.
type Regression struct {
	// Name is the benchmark; Metric is "ns/op" or "allocs/op".
	Name   string
	Metric string
	// Base and Got are the baseline and fresh values; Ratio is Got/Base,
	// or +Inf for a regression from a zero baseline.
	Base  float64
	Got   float64
	Ratio float64
}

func (r Regression) String() string {
	if math.IsInf(r.Ratio, 1) {
		return fmt.Sprintf("%s %s regressed from zero baseline (%.4g -> %.4g)", r.Name, r.Metric, r.Base, r.Got)
	}
	return fmt.Sprintf("%s %s regressed %.2fx (%.4g -> %.4g)", r.Name, r.Metric, r.Ratio, r.Base, r.Got)
}

// ZeroBaselineEpsilon is the absolute slack a zero-baseline metric gets:
// a baseline of 0 (a steady-state allocation-free benchmark) has no ratio
// to scale tolerance by, so any fresh value beyond this constant is a
// regression. A half-allocation of slack means literal 0 still passes and
// the first real allocation fails — relative tolerance cannot express
// "stay at zero", and dividing by the zero baseline silently passed every
// 0→k regression before this rule existed.
const ZeroBaselineEpsilon = 0.5

// Compare judges a fresh point against a baseline point: every benchmark
// recorded in both is compared on the gated metrics ("ns/op" and
// "allocs/op"; passing none gates both), and any metric exceeding
// baseline·(1+tolerance) is reported as a regression, sorted worst
// first. Benchmarks present in only one point are skipped — a newly
// added benchmark has no history to regress against, and a benchmark
// missing from the fresh point is the catalog test's job to flag.
// Tolerance 0.25 means "fail beyond 25% slower". Narrowing metrics to
// allocs/op is how CI gates across machine classes: allocation counts
// are machine-independent where wall clock is not.
//
// A zero baseline gets absolute, not relative, treatment: tolerance
// scales the baseline, so a baseline of 0 would tolerate nothing — or,
// with ratio math, divide by zero and tolerate everything (the historical
// bug: an allocation-free benchmark could regress 0→k allocs/op and pass
// the gate). Instead, any fresh value beyond ZeroBaselineEpsilon fails,
// reported with Ratio +Inf so zero-baseline regressions sort worst-first.
func Compare(baseline, fresh Point, tolerance float64, metrics ...string) []Regression {
	gated := func(metric string) bool {
		if len(metrics) == 0 {
			return true
		}
		for _, m := range metrics {
			if m == metric {
				return true
			}
		}
		return false
	}
	var out []Regression
	for _, base := range baseline.Results {
		got, ok := fresh.Find(base.Name)
		if !ok {
			continue
		}
		check := func(metric string, b, g float64) {
			if !gated(metric) {
				return
			}
			if b <= 0 {
				if g > ZeroBaselineEpsilon {
					out = append(out, Regression{Name: base.Name, Metric: metric, Base: b, Got: g, Ratio: math.Inf(1)})
				}
				return
			}
			if ratio := g / b; ratio > 1+tolerance {
				out = append(out, Regression{Name: base.Name, Metric: metric, Base: b, Got: g, Ratio: ratio})
			}
		}
		check("ns/op", base.NsPerOp, got.NsPerOp)
		check("allocs/op", float64(base.AllocsPerOp), float64(got.AllocsPerOp))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ratio != out[j].Ratio {
			return out[i].Ratio > out[j].Ratio
		}
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}
