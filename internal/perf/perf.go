// Package perf defines the repository's tracked hot-path benchmarks: the
// large adversary-style scenario grid through the engine worker pool, the
// Wing–Gong linearizability checker on long histories, and the raw
// simulator event loop. The benchmark bodies are plain functions taking a
// *testing.B so that the same code backs both `go test -bench` (via the
// wrappers in perf_test.go) and cmd/tbbench, which runs them with
// testing.Benchmark and appends a point to the BENCH_<date>.json
// trajectory (see docs/PERFORMANCE.md).
//
// The benchmark shapes are part of the trajectory's contract: changing a
// workload size or grid axis invalidates comparisons against previously
// recorded points, so extend this package by adding benchmarks rather
// than editing existing ones.
package perf

import (
	"context"
	"fmt"
	"testing"
	"time"

	"timebounds/internal/check"
	"timebounds/internal/engine"
	"timebounds/internal/experiments"
	"timebounds/internal/keyspace"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

// Benchmark names one tracked benchmark and its body.
type Benchmark struct {
	// Name is the stable identifier recorded in BENCH_*.json.
	Name string
	// Brief says what the benchmark exercises, for -list output.
	Brief string
	// Func is the benchmark body.
	Func func(b *testing.B)
}

// Benchmarks returns the tracked benchmark suite in recording order.
func Benchmarks() []Benchmark {
	return []Benchmark{
		{
			Name:  "engine/large-grid",
			Brief: "208-scenario verified grid (4 backends × 2 objects × 2 delay adversaries × 13 seeds, 200-op histories) through the worker pool",
			Func:  BenchLargeGrid,
		},
		{
			Name:  "check/long-history",
			Brief: "Wing–Gong check of one 240-op concurrent register history",
			Func:  BenchCheckerLongHistory,
		},
		{
			Name:  "check/grid-histories",
			Brief: "Wing–Gong checks across 16 distinct 200-op histories (fresh caches, exercises per-run setup)",
			Func:  BenchCheckerGridHistories,
		},
		{
			Name:  "sim/event-loop",
			Brief: "one engine scenario run (Algorithm 1, 400 ops of message/timer traffic) on the discrete-event loop, as grids drive it",
			Func:  BenchSimEventLoop,
		},
		{
			Name:  "engine/sharded-store",
			Brief: "sharded store: 24-key keyed workload hashed into 8 verified dictionary sub-clusters, run and merged through the worker pool",
			Func:  BenchShardedStore,
		},
		{
			Name:  "engine/stream-grid",
			Brief: "208-scenario verified grid consumed through Engine.Stream with constant-memory online aggregation (no retained histories)",
			Func:  BenchStreamGrid,
		},
		{
			Name:  "study/saturation-search",
			Brief: "load-sweep saturation study: 4-point geometric axis plus knee bisection, open-loop register traffic folded online per point",
			Func:  BenchSaturationSearch,
		},
		{
			Name:  "check/island-steady",
			Brief: "steady-state re-verification of one 240-op history with a reused arena and warm shared cache (island decomposition on)",
			Func:  BenchCheckerIslandSteady,
		},
		{
			Name:  "engine/zipf-store",
			Brief: "planet-scale keyed store: 2400-op Zipf stream over 120 000 keys, range-partitioned into 12 verified shards with one mid-run hot-key migration composed across the handoff",
			Func:  BenchZipfStore,
		},
		{
			Name:  "live/inproc-cluster",
			Brief: "3-replica wall-clock goroutine cluster over the in-process chan transport: warm-up, estimation, load, drain, and the post-hoc Wing–Gong check (ops/s and check-ns/op reported)",
			Func:  BenchLiveInprocCluster,
		},
	}
}

// GridScenarios builds the large-grid benchmark's scenario list: hundreds
// of verified scenarios whose histories are ≥ 200 operations each — the
// shape the ROADMAP calls out as profile-dominating (simulator event loop
// plus Wing–Gong checking on every run).
func GridScenarios() []engine.Scenario {
	grid := engine.Grid{
		Backends: engine.Backends(),
		Objects:  []spec.DataType{types.NewRegister(0), types.NewCounter()},
		Params:   []model.Params{experiments.DefaultParams(4)},
		Delays: []engine.DelaySpec{
			{Mode: engine.DelayRandom},
			{Mode: engine.DelayExtremal},
		},
		Seeds:     seeds(13),
		Workloads: []workload.Spec{{OpsPerProcess: 50}},
		Verify:    true,
	}
	return grid.Scenarios()
}

func seeds(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

// BenchLargeGrid runs the full verified grid once per iteration and
// reports scenario and operation throughput.
func BenchLargeGrid(b *testing.B) {
	scenarios := GridScenarios()
	b.ReportAllocs()
	b.ResetTimer()
	ops := 0
	for i := 0; i < b.N; i++ {
		rep := engine.Run(scenarios)
		if err := rep.Err(); err != nil {
			b.Fatal(err)
		}
		ops = 0
		for _, res := range rep.Results {
			if !res.Linearizable {
				b.Fatalf("%s: history not linearizable", res.Name)
			}
			ops += res.Ops
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(scenarios)), "scenarios")
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(ops)*float64(b.N)/sec, "ops/s")
	}
}

// LongHistory produces the checker benchmark's input: a deterministic
// ≥ 240-operation register history with real concurrency (extremal delays,
// maximal admissible skew), recorded from one engine run.
func LongHistory() (spec.DataType, *workload.Report) {
	dt := types.NewRegister(0)
	sc := engine.Scenario{
		DataType: dt,
		Params:   experiments.DefaultParams(4),
		Seed:     7,
		Delay:    engine.DelaySpec{Mode: engine.DelayExtremal},
		Workload: workload.Spec{OpsPerProcess: 60},
	}
	inst, err := sc.Build()
	if err != nil {
		panic(fmt.Sprintf("perf: build long-history scenario: %v", err))
	}
	sched, err := sc.Workload.WithDefaults(sc.Params, dt).Schedule(sc.Params, sc.Seed)
	if err != nil {
		panic(fmt.Sprintf("perf: schedule long-history workload: %v", err))
	}
	rep, err := workload.Run(inst, sched, workload.RunOptions{})
	if err != nil {
		panic(fmt.Sprintf("perf: run long-history scenario: %v", err))
	}
	return dt, &rep
}

// BenchCheckerLongHistory measures repeated Wing–Gong checks of one long
// concurrent history — the steady-state checker cost with any per-history
// precomputation amortized away by the iteration count.
func BenchCheckerLongHistory(b *testing.B) {
	dt, rep := LongHistory()
	if rep.History.Len() < 200 {
		b.Fatalf("long history has %d ops, want ≥ 200", rep.History.Len())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := check.Check(dt, rep.History); !res.Linearizable {
			b.Fatal("long history should be linearizable")
		}
	}
	b.ReportMetric(float64(rep.History.Len()), "history-ops")
}

// BenchCheckerIslandSteady measures the checker's steady state as an
// engine worker sees it: the same long history re-verified with a reused
// arena and a warm shared transition cache, islands enabled. With every
// slab warm, allocs/op here is the checker's true floor — the witness
// slice handed back in the Result and nothing else.
func BenchCheckerIslandSteady(b *testing.B) {
	dt, rep := LongHistory()
	arena := check.NewArena()
	opts := check.Options{Arena: arena, Cache: check.NewCache()}
	for i := 0; i < 3; i++ {
		check.CheckOpts(dt, rep.History, opts)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := check.CheckOpts(dt, rep.History, opts); !res.Linearizable {
			b.Fatal("long history should be linearizable")
		}
	}
	b.ReportMetric(float64(rep.History.Len()), "history-ops")
}

// BenchCheckerGridHistories measures the checker across 16 distinct
// 200-op histories per iteration — the per-scenario cost profile of a
// verified grid, where every run brings a new history.
func BenchCheckerGridHistories(b *testing.B) {
	type input struct {
		dt spec.DataType
		h  *workload.Report
	}
	var inputs []input
	for _, dt := range []spec.DataType{types.NewRegister(0), types.NewCounter()} {
		for seed := int64(1); seed <= 8; seed++ {
			sc := engine.Scenario{
				DataType: dt,
				Params:   experiments.DefaultParams(4),
				Seed:     seed,
				Delay:    engine.DelaySpec{Mode: engine.DelayExtremal},
				Workload: workload.Spec{OpsPerProcess: 50},
			}
			inst, err := sc.Build()
			if err != nil {
				b.Fatal(err)
			}
			sched, err := sc.Workload.WithDefaults(sc.Params, dt).Schedule(sc.Params, seed)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := workload.Run(inst, sched, workload.RunOptions{})
			if err != nil {
				b.Fatal(err)
			}
			inputs = append(inputs, input{dt: dt, h: &rep})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range inputs {
			if res := check.Check(in.dt, in.h.History); !res.Linearizable {
				b.Fatal("grid history should be linearizable")
			}
		}
	}
	b.ReportMetric(float64(len(inputs)), "histories")
}

// ShardedStoreScenario builds the sharded benchmark's input: a 24-key
// keyed workload hashed into 8 dictionary shards, every shard verified —
// the engine's single-workload scaling path (expansion, per-shard
// isolated runs across the worker pool, merged composed report).
func ShardedStoreScenario() engine.ShardedScenario {
	keys := make([]string, 24)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
	}
	return engine.ShardedScenario{
		Params: experiments.DefaultParams(4),
		Seed:   5,
		Workload: workload.Sharded{
			Keys:   keys,
			Shards: 8,
			PerKey: workload.Spec{OpsPerProcess: 4},
		},
		Verify: true,
	}
}

// BenchShardedStore runs the sharded store once per iteration — keyed
// expansion, per-shard sub-cluster runs, verification, and the merged
// report — and reports shard count and operation throughput.
func BenchShardedStore(b *testing.B) {
	ss := ShardedStoreScenario()
	b.ReportAllocs()
	b.ResetTimer()
	var rep engine.ShardedReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = engine.RunSharded(ss)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			b.Fatal(err)
		}
		if !rep.Linearizable() {
			b.Fatal("sharded store must compose linearizable")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rep.Stats.Shards), "shards")
	b.ReportMetric(float64(rep.Ops), "ops")
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(rep.Ops)*float64(b.N)/sec, "ops/s")
	}
}

// ZipfStoreScenario builds the zipf-store benchmark's input: a streamed
// Zipf schedule over a 120 000-key universe (the keyspace package's
// constant-memory path — the key space is never materialized), range-
// partitioned into 12 dictionary shards, with one planned migration moving
// the hottest key off the head shard mid-schedule. Verify is on, so every
// iteration pays the full composed check: per-shard verdicts plus the
// migrated key's per-epoch and stitched cross-epoch components.
func ZipfStoreScenario() engine.ShardedScenario {
	space := keyspace.Space{N: 120_000}
	const shards = 12
	w := keyspace.Workload{
		Name:  "zipf-store",
		Space: space,
		Model: keyspace.Zipf{S: 1.25},
		Ops:   2400,
	}
	p := experiments.DefaultParams(4)
	// The stream starts at d and spaces ops 2d/n apart; cut over at the
	// schedule's midpoint so both epochs carry real traffic.
	cutover := model.Time(p.D) + 1200*model.Time(2*p.D/model.Time(p.N))
	return engine.ShardedScenario{
		Params:   p,
		Seed:     5,
		Workload: w.Sharded(shards),
		Plan: &keyspace.Plan{
			Base: keyspace.RangePartition(space, shards),
			Migrations: []keyspace.Migration{
				{At: cutover, Moves: []keyspace.Move{keyspace.MoveKey(space.Key(0), shards-1)}, Reason: "hot head"},
			},
		},
		Verify: true,
	}
}

// BenchZipfStore runs the migrating Zipf store once per iteration —
// streamed expansion over the 120k-key universe, per-shard sub-cluster
// runs, the drain-then-cutover handoff, and the composed verification
// across the migration — and reports moved keys and operation throughput.
func BenchZipfStore(b *testing.B) {
	ss := ZipfStoreScenario()
	b.ReportAllocs()
	b.ResetTimer()
	var rep engine.ShardedReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = engine.RunSharded(ss)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			b.Fatal(err)
		}
		if !rep.Linearizable() {
			b.Fatal("zipf store must compose linearizable across the migration")
		}
		if rep.Stats.MovedKeys == 0 {
			b.Fatal("zipf store migration moved no keys")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rep.Stats.Shards), "shards")
	b.ReportMetric(float64(rep.Stats.MovedKeys), "moved-keys")
	b.ReportMetric(float64(rep.Ops), "ops")
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(rep.Ops)*float64(b.N)/sec, "ops/s")
	}
}

// BenchStreamGrid runs the same verified grid as BenchLargeGrid, but
// consumed the streaming way: Results arrive in completion order through
// Engine.Stream and fold into an online Aggregate (count/mean/M2 plus the
// quantile sketch) instead of being retained — the constant-memory path
// Study and large-sweep consumers use. Its allocation profile is the
// budget for the stream-plus-aggregation overhead on top of the raw runs.
func BenchStreamGrid(b *testing.B) {
	scenarios := GridScenarios()
	b.ReportAllocs()
	b.ResetTimer()
	var agg *engine.Aggregate
	for i := 0; i < b.N; i++ {
		agg = engine.NewAggregate()
		for j, res := range engine.New(0).Stream(context.Background(), scenarios) {
			agg.Add(scenarios[j].DataType, res)
		}
		if !agg.OK() {
			b.Fatalf("streamed grid failed: %v", agg.Errs)
		}
		if agg.Scenarios != len(scenarios) {
			b.Fatalf("aggregated %d of %d scenarios", agg.Scenarios, len(scenarios))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(scenarios)), "scenarios")
	b.ReportMetric(float64(agg.Latency.P99()), "p99-ns")
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(agg.Ops)*float64(b.N)/sec, "ops/s")
	}
}

// BenchSaturationSearch measures one full saturation study per iteration:
// a 4-point geometric offered-load axis over the worst-delay register
// scenario plus the knee bisection — the Study API's end-to-end hot path
// (per-point scenario expansion, streamed runs, online folds, bracket
// narrowing).
func BenchSaturationSearch(b *testing.B) {
	study := engine.Study{
		Base: engine.Scenario{
			DataType: types.NewRMWRegister(0),
			Params:   experiments.DefaultParams(3),
			Seed:     1,
			Delay:    engine.DelaySpec{Mode: engine.DelayWorst},
		},
		Ramp:        engine.LoadRamp{From: 30, To: 1200, Points: 4},
		OpsPerPoint: 12,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var rep engine.StudyReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = study.Run(context.Background(), engine.New(0))
		if err != nil {
			b.Fatal(err)
		}
		if rep.Knee == nil {
			b.Fatal("study found no knee")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(rep.Points)), "points")
	b.ReportMetric(rep.Knee.Load, "knee-ops/s")
}

// BenchLiveInprocCluster measures one live-runtime scenario per
// iteration: a 3-replica wall-clock goroutine cluster over the in-process
// chan transport — warm-up probes, online (u, d) estimation, closed-loop
// load, drain — plus the post-hoc Wing–Gong check of the recorded
// history. ns/op here is dominated by real waiting (the tuned waits are
// genuine durations), so the custom metrics carry the signal: live-ops/s
// is cluster throughput, check-ns/op the post-hoc verification cost.
func BenchLiveInprocCluster(b *testing.B) {
	sc := engine.Scenario{
		Backend:  engine.Algorithm1{},
		DataType: types.NewRMWRegister(0),
		Params:   model.Params{N: 3, D: 2 * time.Millisecond, U: 1500 * time.Microsecond},
		Seed:     1,
		Workload: workload.Spec{OpsPerProcess: 8, Spacing: 2 * time.Millisecond},
		Runtime:  engine.LiveRuntime(),
	}
	eng := engine.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	ops := 0
	var checkNS float64
	for i := 0; i < b.N; i++ {
		res, err := eng.RunOne(sc)
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		if cr := check.Check(sc.DataType, res.History); !cr.Linearizable {
			b.Fatal("live history should be linearizable")
		}
		checkNS += float64(time.Since(start).Nanoseconds())
		ops = res.Ops
	}
	b.StopTimer()
	b.ReportMetric(float64(ops), "ops")
	b.ReportMetric(checkNS/float64(b.N), "check-ns/op")
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(ops)*float64(b.N)/sec, "live-ops/s")
	}
}

// BenchSimEventLoop measures one engine scenario run per iteration — an
// Algorithm 1 cluster pushing 400 operations' worth of invocations,
// broadcasts, and timers through the discrete-event loop, exactly the way
// a grid's worker pool drives it (fresh isolated instance, no verifier).
// Allocation counts here are the sim hot path's allocation budget.
func BenchSimEventLoop(b *testing.B) {
	sc := engine.Scenario{
		DataType: types.NewRegister(0),
		Params:   experiments.DefaultParams(4),
		Seed:     3,
		Delay:    engine.DelaySpec{Mode: engine.DelayWorst},
		Workload: workload.Spec{OpsPerProcess: 100},
	}
	eng := engine.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	ops := 0
	for i := 0; i < b.N; i++ {
		res, err := eng.RunOne(sc)
		if err != nil {
			b.Fatal(err)
		}
		ops = res.Ops
	}
	b.StopTimer()
	b.ReportMetric(float64(ops), "ops")
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(ops)*float64(b.N)/sec, "sim-ops/s")
	}
}
