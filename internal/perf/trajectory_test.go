package perf_test

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"timebounds/internal/perf"
)

func point(label string, ns float64, allocs int64) perf.Point {
	return perf.Point{
		Label: label,
		Date:  "2026-07-29",
		Results: []perf.Measurement{
			{Name: "engine/large-grid", N: 10, NsPerOp: ns, AllocsPerOp: allocs},
			{Name: "sim/event-loop", N: 100, NsPerOp: ns / 10, AllocsPerOp: allocs / 10},
		},
	}
}

func TestAppendPointCreatesFreshFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_2026-07-29.json")
	f, err := perf.AppendPoint(path, point("first", 1e6, 500), false)
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != perf.Schema || len(f.Points) != 1 {
		t.Fatalf("fresh file = %+v, want schema %q with 1 point", f, perf.Schema)
	}
	read, err := perf.ReadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(read.Points) != 1 || read.Points[0].Label != "first" {
		t.Fatalf("round-trip = %+v", read.Points)
	}
}

// TestAppendPointAppendsOnDateCollision pins the date-collision behavior
// behind `make bench-json`: recording twice on one day appends a second
// point to the same file instead of truncating history.
func TestAppendPointAppendsOnDateCollision(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_2026-07-29.json")
	if _, err := perf.AppendPoint(path, point("first", 1e6, 500), false); err != nil {
		t.Fatal(err)
	}
	f, err := perf.AppendPoint(path, point("second", 2e6, 600), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 2 {
		t.Fatalf("file has %d points after second append, want 2", len(f.Points))
	}
	if f.Points[0].Label != "first" || f.Points[1].Label != "second" {
		t.Fatalf("points out of order: %q, %q", f.Points[0].Label, f.Points[1].Label)
	}
}

func TestAppendPointOverwriteStartsOver(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if _, err := perf.AppendPoint(path, point("old", 1e6, 500), false); err != nil {
		t.Fatal(err)
	}
	f, err := perf.AppendPoint(path, point("new", 2e6, 600), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 1 || f.Points[0].Label != "new" {
		t.Fatalf("overwrite kept old points: %+v", f.Points)
	}
}

// TestAppendPointRefusesCorruptFile: an existing-but-unreadable
// trajectory must never be silently replaced by a single fresh point.
func TestAppendPointRefusesCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := perf.AppendPoint(path, point("p", 1e6, 500), false); err == nil {
		t.Fatal("appending to a corrupt trajectory must fail")
	}
	if _, err := perf.AppendPoint(path, point("p", 1e6, 500), true); err != nil {
		t.Fatalf("overwrite must be the explicit escape hatch: %v", err)
	}
}

func TestAppendPointRefusesWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9","points":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := perf.AppendPoint(path, point("p", 1e6, 500), false); err == nil {
		t.Fatal("appending to a foreign-schema file must fail")
	}
}

func TestCompareWithinToleranceIsClean(t *testing.T) {
	base := point("base", 1e6, 500)
	fresh := point("fresh", 1.2e6, 550) // 20% slower, 10% more allocs
	if regs := perf.Compare(base, fresh, 0.25); len(regs) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", regs)
	}
}

// TestCompareFlagsSyntheticSlowdown is the gate's acceptance shape: a
// ≥25% slowdown against the baseline must fail.
func TestCompareFlagsSyntheticSlowdown(t *testing.T) {
	base := point("base", 1e6, 500)
	fresh := point("fresh", 1.6e6, 500) // 60% slower on ns/op only
	regs := perf.Compare(base, fresh, 0.25)
	if len(regs) != 2 { // both benchmarks in the point scale together
		t.Fatalf("got %d regressions, want 2: %v", len(regs), regs)
	}
	r := regs[0]
	if r.Metric != "ns/op" || r.Ratio < 1.59 || r.Ratio > 1.61 {
		t.Fatalf("regression = %+v, want ns/op at 1.6x", r)
	}
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	base := point("base", 1e6, 500)
	fresh := point("fresh", 1e6, 1000) // allocations doubled, time flat
	regs := perf.Compare(base, fresh, 0.25)
	if len(regs) == 0 {
		t.Fatal("doubled allocations must be flagged")
	}
	for _, r := range regs {
		if r.Metric != "allocs/op" {
			t.Fatalf("unexpected regression metric: %+v", r)
		}
	}
}

// TestCompareMetricFilter: narrowing the gate to allocs/op (what CI does
// across machine classes) must ignore wall-clock regressions.
func TestCompareMetricFilter(t *testing.T) {
	base := point("base", 1e6, 500)
	fresh := point("fresh", 3e6, 1000) // 3x slower AND doubled allocs
	regs := perf.Compare(base, fresh, 0.25, "allocs/op")
	if len(regs) == 0 {
		t.Fatal("doubled allocations must be flagged under the allocs/op gate")
	}
	for _, r := range regs {
		if r.Metric != "allocs/op" {
			t.Fatalf("ns/op gated despite the metric filter: %+v", r)
		}
	}
	if regs := perf.Compare(base, fresh, 0.25, "ns/op"); len(regs) == 0 || regs[0].Metric != "ns/op" {
		t.Fatalf("ns/op filter regressions = %v, want ns/op only", regs)
	}
}

// TestCompareZeroBaselineRegression is the gate's zero-baseline rule: an
// allocation-free baseline (0 allocs/op) has no ratio to scale tolerance
// by — the historical code divided by zero and silently passed every 0→k
// regression. Any fresh value beyond ZeroBaselineEpsilon must now fail,
// with Ratio +Inf so it sorts worst-first among mixed regressions.
func TestCompareZeroBaselineRegression(t *testing.T) {
	base := point("base", 1e6, 500)
	base.Results = append(base.Results, perf.Measurement{Name: "check/steady", N: 100, NsPerOp: 1e3, AllocsPerOp: 0})

	// The failing shape: steady-state benchmark starts allocating again.
	fresh := point("fresh", 1.6e6, 500) // plus a 60% ns/op slowdown elsewhere
	fresh.Results = append(fresh.Results, perf.Measurement{Name: "check/steady", N: 100, NsPerOp: 1e3, AllocsPerOp: 7})
	regs := perf.Compare(base, fresh, 0.25)
	var zero *perf.Regression
	for i := range regs {
		if regs[i].Name == "check/steady" && regs[i].Metric == "allocs/op" {
			zero = &regs[i]
		}
	}
	if zero == nil {
		t.Fatalf("0→7 allocs/op not flagged: %v", regs)
	}
	if !math.IsInf(zero.Ratio, 1) || zero.Base != 0 || zero.Got != 7 {
		t.Fatalf("zero-baseline regression = %+v, want Ratio=+Inf Base=0 Got=7", *zero)
	}
	if regs[0].Name != "check/steady" {
		t.Fatalf("zero-baseline regression must sort worst-first, got %v", regs)
	}
	if s := zero.String(); !strings.Contains(s, "zero baseline") {
		t.Fatalf("String() = %q, want a zero-baseline rendering", s)
	}

	// The passing shape: staying at zero (or within the absolute epsilon)
	// is clean, and the epsilon never converts to a relative tolerance.
	ok := point("ok", 1e6, 500)
	ok.Results = append(ok.Results, perf.Measurement{Name: "check/steady", N: 100, NsPerOp: 1e3, AllocsPerOp: 0})
	for _, r := range perf.Compare(base, ok, 0.25) {
		if r.Name == "check/steady" {
			t.Fatalf("allocation-free run flagged against zero baseline: %+v", r)
		}
	}
}

// TestCompareSkipsUnmatchedBenchmarks: a newly added benchmark has no
// history to regress against, and must not fail the gate.
func TestCompareSkipsUnmatchedBenchmarks(t *testing.T) {
	base := point("base", 1e6, 500)
	fresh := point("fresh", 1e6, 500)
	fresh.Results = append(fresh.Results, perf.Measurement{Name: "engine/sharded-store", NsPerOp: 9e9})
	if regs := perf.Compare(base, fresh, 0.25); len(regs) != 0 {
		t.Fatalf("new benchmark flagged against no history: %v", regs)
	}
}

func TestFileLatest(t *testing.T) {
	var f perf.File
	if _, ok := f.Latest(); ok {
		t.Fatal("empty file has no latest point")
	}
	f.Points = []perf.Point{point("a", 1, 1), point("b", 2, 2)}
	pt, ok := f.Latest()
	if !ok || pt.Label != "b" {
		t.Fatalf("Latest() = %+v, want the newest point", pt)
	}
}
