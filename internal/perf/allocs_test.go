package perf_test

import (
	"testing"

	"timebounds/internal/perf"
)

// TestAllocBudgets is the per-package steady-state allocation gate: every
// registered hot path, once warm, must stay within its absolute budget.
// Unlike the trajectory gate (relative to a committed BENCH_*.json
// baseline), a budget violation names the leaking package directly.
func TestAllocBudgets(t *testing.T) {
	budgets := perf.AllocBudgets()
	if len(budgets) == 0 {
		t.Fatal("no allocation budgets registered")
	}
	seen := make(map[string]bool, len(budgets))
	for _, b := range budgets {
		if seen[b.Name] {
			t.Fatalf("duplicate budget name %q", b.Name)
		}
		seen[b.Name] = true
		t.Run(b.Name, func(t *testing.T) {
			unit := b.Make()
			if avg := testing.AllocsPerRun(100, unit); avg > b.Budget {
				t.Errorf("%s: %.2f allocs per unit, budget %.0f (%s)",
					b.Name, avg, b.Budget, b.Brief)
			}
		})
	}
}
