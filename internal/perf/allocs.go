package perf

import (
	"math/rand"
	"time"

	"timebounds/internal/check"
	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
	"timebounds/internal/tob"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

// The per-package allocation budgets: each entry pins the steady-state
// allocs-per-unit of one hot path, measured with testing.AllocsPerRun
// after an explicit warmup. Where the benchmark trajectory (BENCH_*.json,
// Compare) gates whole-suite drift against a committed baseline at a
// relative tolerance, these budgets are absolute and local — "this loop,
// once warm, allocates at most N times" — so a leak pinpoints its package
// instead of surfacing as a diffuse grid-wide regression. The gate runs
// in `go test ./internal/perf` (TestAllocBudgets) and under
// `make bench-compare`, alongside the trajectory gate.

// AllocBudget is one steady-state allocation budget.
type AllocBudget struct {
	// Name is "<package>/<path>" — the package whose hot path is gated.
	Name string
	// Brief says what one measured unit of work is.
	Brief string
	// Budget is the maximum average allocations per unit.
	Budget float64
	// Make performs setup and warmup, returning the unit of work to
	// measure. Setup allocations are not counted.
	Make func() func()
}

// AllocBudgets returns the per-package steady-state budgets.
func AllocBudgets() []AllocBudget {
	return []AllocBudget{
		{
			Name:  "check/steady-recheck",
			Brief: "re-verify a 16-op bursty history with a reused arena and warm shared cache",
			// The one allocation is the witness slice handed back in the
			// Result — the only per-check state the caller keeps.
			Budget: 1,
			Make:   makeCheckSteady,
		},
		{
			Name:   "sim/event-wave",
			Brief:  "a 4-process invoke/broadcast/timer wave (20 events) through a warm event loop",
			Budget: 8, // amortized history-record and timer-slice growth only
			Make:   makeSimWave,
		},
		{
			Name:   "workload/online-observe",
			Brief:  "fold one latency sample into a warm OnlineStats sketch",
			Budget: 0, // fixed-size sketch: zero once every bucket exists
			Make:   makeOnlineObserve,
		},
		{
			Name:  "tob/enqueue-drain",
			Brief: "sequence, buffer out-of-order, and deliver one 8-message round of total-order broadcast",
			// One box per stamped message (the sim's any-typed payload
			// surface); the enqueue buffer itself must contribute zero —
			// it rewinds to its own backing array when drained.
			Budget: 8,
			Make:   makeTOBRound,
		},
	}
}

// makeCheckSteady: the engine's steady state — one worker re-verifying
// histories with its own arena and the stream's shared per-datatype cache.
func makeCheckSteady() func() {
	dt := types.NewRegister(0)
	h := burstyHistory(dt, 3, 16)
	arena := check.NewArena()
	opts := check.Options{Arena: arena, Cache: check.NewCache()}
	unit := func() { check.CheckOpts(dt, h, opts) }
	for i := 0; i < 5; i++ {
		unit()
	}
	return unit
}

// burstyHistory builds a small concurrent history with idle gaps, so the
// steady-recheck budget exercises the island decomposition path.
func burstyHistory(dt spec.DataType, seed int64, n int) *history.History {
	rng := rand.New(rand.NewSource(seed))
	kinds := dt.Kinds()
	h := history.New()
	state := dt.InitialState()
	now := model.Time(0)
	type open struct {
		id   history.OpID
		ret  spec.Value
		resp model.Time
	}
	var opens []open
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 {
			now += 50 * model.Time(time.Millisecond)
		} else {
			now += model.Time(rng.Intn(3)) * model.Time(time.Millisecond)
		}
		kind := kinds[rng.Intn(len(kinds))]
		arg := spec.Value(rng.Intn(3))
		next, ret := dt.Apply(state, kind, arg)
		state = next
		id := h.Invoke(model.ProcessID(rng.Intn(3)), kind, arg, now)
		opens = append(opens, open{id: id, ret: ret,
			resp: now + model.Time(1+rng.Intn(6))*model.Time(time.Millisecond)})
	}
	for _, o := range opens {
		if err := h.Respond(o.id, o.ret, o.resp); err != nil {
			panic(err)
		}
	}
	return h
}

// waveProc answers each invocation with a broadcast, a timer, and a
// response on the timer — the sim package's allocation-test process shape.
type waveProc struct{}

func (waveProc) OnInvoke(env sim.Env, id history.OpID, _ spec.OpKind, _ spec.Value) {
	env.Broadcast(struct{}{})
	env.SetTimerAfter(5*model.Time(time.Millisecond), id)
}
func (waveProc) OnMessage(sim.Env, model.ProcessID, any) {}
func (waveProc) OnTimer(env sim.Env, payload any) {
	env.Respond(payload.(history.OpID), nil)
}

func makeSimWave() func() {
	ms := model.Time(time.Millisecond)
	p := model.Params{N: 4, D: 10 * ms, U: 4 * ms, Epsilon: 2 * ms}
	procs := make([]sim.Process, p.N)
	for i := range procs {
		procs[i] = waveProc{}
	}
	s, err := sim.New(sim.Config{Params: p, Delay: sim.FixedDelay(10 * ms),
		StrictDelays: true, DiscardTraces: true}, procs)
	if err != nil {
		panic(err)
	}
	at := model.Time(0)
	unit := func() {
		for proc := 0; proc < p.N; proc++ {
			s.Invoke(at, model.ProcessID(proc), "op", nil)
		}
		at += 20 * ms
		if err := s.Run(at); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 5; i++ {
		unit()
	}
	return unit
}

func makeOnlineObserve() func() {
	s := workload.NewOnlineStats()
	rng := rand.New(rand.NewSource(7))
	unit := func() { s.Observe(model.Time(rng.Int63n(30_000_000) + 1_000)) }
	for i := 0; i < 10_000; i++ {
		unit() // populate every sketch bucket the distribution reaches
	}
	return unit
}

// drainCount is a Deliverer that only counts, so the TOB budget measures
// the broadcast layer alone.
type drainCount struct{ n int }

func (d *drainCount) Deliver(_ sim.Env, _ int, _ model.ProcessID, _ any) { d.n++ }

// captureEnv is a sim.Env stub that only records Broadcast payloads, so
// the TOB budget can replay the sequencer's (unexported) stamped messages
// into a receiving Broadcaster without the full simulator — isolating the
// enqueue/drain path the budget gates.
type captureEnv struct{ out []any }

func (e *captureEnv) Self() model.ProcessID { return 0 }
func (e *captureEnv) N() int                { return 2 }
func (e *captureEnv) ClockTime() model.Time { return 0 }
func (e *captureEnv) Send(_ model.ProcessID, payload any) {
	e.out = append(e.out, payload)
}
func (e *captureEnv) Broadcast(payload any)                     { e.out = append(e.out, payload) }
func (e *captureEnv) SetTimerAfter(model.Time, any) sim.TimerID { return 0 }
func (e *captureEnv) CancelTimer(sim.TimerID)                   {}
func (e *captureEnv) Respond(history.OpID, spec.Value)          {}

func makeTOBRound() func() {
	// A sequencer stamps 8 messages into the capture buffer; the receiver
	// gets them in a fixed out-of-order permutation, exercising both of
	// enqueue's regimes each round — sorted-tail insertion (buffering) and
	// the in-order drain with its buffer rewind.
	nop := &drainCount{}
	sink := &drainCount{}
	seqB := &tob.Broadcaster{Self: 0, Sequencer: 0, Target: nop}
	recv := &tob.Broadcaster{Self: 1, Sequencer: 0, Target: sink}
	env := &captureEnv{}
	order := []int{1, 0, 3, 2, 5, 4, 7, 6}
	unit := func() {
		env.out = env.out[:0]
		for range order {
			seqB.Broadcast(env, nil)
		}
		for _, off := range order {
			recv.HandleMessage(env, env.out[off])
		}
	}
	for i := 0; i < 5; i++ {
		unit()
	}
	if sink.n != 5*len(order) {
		panic("tob budget harness: deliveries lost during warmup")
	}
	return unit
}
