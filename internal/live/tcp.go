package live

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"timebounds/internal/model"
)

func init() {
	// The repo's data types carry these concrete types in spec.Value
	// payloads; the gob stream must know them to move an `any` field.
	RegisterWireValue(int(0))
	RegisterWireValue(int64(0))
	RegisterWireValue(uint64(0))
	RegisterWireValue(float64(0))
	RegisterWireValue("")
	RegisterWireValue(false)
	RegisterWireValue([]byte(nil))
}

// RegisterWireValue registers a concrete operation argument/return type
// with the TCP transport's gob wire format. The basic Go scalar types are
// pre-registered; a custom spec.DataType whose Values are structs must
// register them before Open.
func RegisterWireValue(v any) { gob.Register(v) }

// TCPTransport connects the replicas over loopback TCP: each endpoint
// owns one listener on 127.0.0.1 and a dialed connection to every peer,
// with gob framing and a per-connection writer goroutine so Send never
// blocks the caller. Delays are whatever the kernel's loopback path
// gives — this is the transport where the estimator meets a stack it
// does not control.
type TCPTransport struct{}

// Name implements Transport.
func (t *TCPTransport) Name() string { return "tcp" }

// Open implements Transport.
func (t *TCPTransport) Open(n int) ([]Endpoint, error) {
	if n < 1 {
		return nil, fmt.Errorf("live: tcp transport needs n >= 1, got %d", n)
	}
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	fail := func(err error) ([]Endpoint, error) {
		for _, ln := range listeners {
			if ln != nil {
				_ = ln.Close()
			}
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(fmt.Errorf("live: tcp listen: %w", err))
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	tcpEps := make([]*tcpEndpoint, n)
	eps := make([]Endpoint, n)
	for i := 0; i < n; i++ {
		e := &tcpEndpoint{ln: listeners[i], box: newInbox(), conns: make([]*tcpConn, n)}
		tcpEps[i] = e
		eps[i] = e
		go e.acceptLoop()
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			c, err := net.Dial("tcp", addrs[j])
			if err != nil {
				for _, e := range tcpEps {
					_ = e.Close()
				}
				return nil, fmt.Errorf("live: tcp dial %s: %w", addrs[j], err)
			}
			tcpEps[i].conns[j] = newTCPConn(c)
		}
	}
	return eps, nil
}

type tcpEndpoint struct {
	ln    net.Listener
	box   *inbox
	conns []*tcpConn // outbound, indexed by destination; nil at self
}

func (e *tcpEndpoint) acceptLoop() {
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer c.Close()
			dec := gob.NewDecoder(c)
			for {
				var m Message
				if err := dec.Decode(&m); err != nil {
					return
				}
				e.box.push(m)
			}
		}()
	}
}

func (e *tcpEndpoint) Send(to model.ProcessID, m Message) error {
	if int(to) < 0 || int(to) >= len(e.conns) || e.conns[to] == nil {
		return fmt.Errorf("live: tcp send to unknown process %d", int(to))
	}
	e.conns[to].push(m)
	return nil
}

func (e *tcpEndpoint) Recv() <-chan Message { return e.box.out }

func (e *tcpEndpoint) Close() error {
	err := e.ln.Close()
	for _, c := range e.conns {
		if c != nil {
			c.close()
		}
	}
	e.box.close()
	return err
}

// tcpConn is one outbound connection: an unbounded queue drained by a
// writer goroutine that gob-encodes onto the socket, so replicas sending
// under their own lock never block on the kernel's send buffer.
type tcpConn struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []Message
	closed bool
	c      net.Conn
}

func newTCPConn(c net.Conn) *tcpConn {
	tc := &tcpConn{c: c}
	tc.cond = sync.NewCond(&tc.mu)
	go tc.writeLoop()
	return tc
}

func (tc *tcpConn) push(m Message) {
	tc.mu.Lock()
	if !tc.closed {
		tc.q = append(tc.q, m)
		tc.cond.Signal()
	}
	tc.mu.Unlock()
}

func (tc *tcpConn) close() {
	tc.mu.Lock()
	tc.closed = true
	tc.cond.Signal()
	tc.mu.Unlock()
}

func (tc *tcpConn) writeLoop() {
	enc := gob.NewEncoder(tc.c)
	for {
		tc.mu.Lock()
		for len(tc.q) == 0 && !tc.closed {
			tc.cond.Wait()
		}
		if len(tc.q) == 0 && tc.closed {
			tc.mu.Unlock()
			_ = tc.c.Close()
			return
		}
		m := tc.q[0]
		tc.q = tc.q[1:]
		tc.mu.Unlock()
		if err := enc.Encode(&m); err != nil {
			_ = tc.c.Close()
			tc.mu.Lock()
			tc.closed = true
			tc.q = nil
			tc.mu.Unlock()
			return
		}
	}
}
