package live

import (
	"fmt"
	"sync"
	"time"

	"timebounds/internal/model"
)

// EstimatorConfig tunes the online (u, d) estimator. The zero value gets
// conservative defaults: a 256-sample window, a 1.0 safety margin (the
// padded envelope doubles the observed spread), 2ms of absolute slack,
// and a 25ms prior that governs waits until MinSamples delays have been
// observed.
type EstimatorConfig struct {
	// Window is the number of most-recent delay samples retained.
	Window int
	// Margin is the relative safety factor applied on top of the
	// observed envelope: the padded estimate is (observed + Slack) ×
	// (1 + Margin). Zero keeps only the absolute Slack.
	Margin float64
	// Slack is the absolute floor added before the margin is applied; it
	// keeps the envelope robust to scheduler hiccups the window has not
	// seen yet.
	Slack model.Time
	// MinSamples is how many delays must be observed before the window
	// replaces the prior.
	MinSamples int
	// Prior is the delay bound assumed before MinSamples observations.
	Prior model.Time
}

func (c EstimatorConfig) withDefaults() EstimatorConfig {
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.Margin < 0 {
		c.Margin = 0
	} else if c.Margin == 0 {
		c.Margin = 1.0
	}
	if c.Slack <= 0 {
		c.Slack = 2 * time.Millisecond
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.Prior <= 0 {
		c.Prior = 25 * time.Millisecond
	}
	return c
}

// Estimate is one snapshot of the estimator's padded partial-synchrony
// envelope: d̂ bounds the one-way delay, û its uncertainty, and ε̂ the
// derived optimal skew (1 − 1/n)·û from Theorem 5.5. The invariant the
// estimator maintains (and the adversarial tests pin) is
// D ≥ WindowMax + Slack and U ≥ (WindowMax − WindowMin) + Slack whenever
// the window is live — the envelope never dips below the realized delays
// it was built from.
type Estimate struct {
	// D is the padded upper bound on the one-way delay (d̂).
	D model.Time
	// U is the padded delay uncertainty (û ≤ d̂).
	U model.Time
	// Epsilon is the derived clock-sync precision (1 − 1/n)·û.
	Epsilon model.Time
	// Samples is the total number of delays observed so far.
	Samples int
	// WindowMin and WindowMax are the raw extrema of the current window
	// (zero while running on the prior).
	WindowMin, WindowMax model.Time
	// FromPrior marks an estimate still governed by the configured prior
	// rather than observed delays.
	FromPrior bool
}

func (e Estimate) String() string {
	src := "window"
	if e.FromPrior {
		src = "prior"
	}
	return fmt.Sprintf("d̂=%v û=%v ε̂=%v (%s, %d samples, window [%v, %v])",
		e.D, e.U, e.Epsilon, src, e.Samples, e.WindowMin, e.WindowMax)
}

// Estimator maintains a sliding window of observed one-way delays and
// derives a padded (d̂, û, ε̂) envelope from its min/max. Observe is
// called from replica receive loops; Snapshot from the retuner — both
// are safe for concurrent use.
type Estimator struct {
	mu    sync.Mutex
	cfg   EstimatorConfig
	n     int
	ring  []model.Time
	next  int
	fill  int
	total int
}

// NewEstimator returns an estimator for an n-process cluster.
func NewEstimator(n int, cfg EstimatorConfig) *Estimator {
	if n < 1 {
		n = 1
	}
	c := cfg.withDefaults()
	return &Estimator{cfg: c, n: n, ring: make([]model.Time, c.Window)}
}

// Observe records one measured one-way delay (receiver clock at delivery
// minus the sender's SentAt stamp). Negative readings — possible under
// clock skew — clamp to zero; the skew itself still widens the window
// spread, which is exactly where it must land for û to cover it.
func (e *Estimator) Observe(d model.Time) {
	if d < 0 {
		d = 0
	}
	e.mu.Lock()
	e.ring[e.next] = d
	e.next = (e.next + 1) % len(e.ring)
	if e.fill < len(e.ring) {
		e.fill++
	}
	e.total++
	e.mu.Unlock()
}

// Samples reports how many delays have been observed in total.
func (e *Estimator) Samples() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.total
}

// Snapshot derives the current padded envelope. Until MinSamples delays
// have been observed it returns the prior (d̂ = û = Prior), which makes
// the derived waits maximally cautious rather than optimistic.
func (e *Estimator) Snapshot() Estimate {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.total < e.cfg.MinSamples {
		p := e.cfg.Prior
		return Estimate{
			D: p, U: p, Epsilon: optimalSkew(e.n, p),
			Samples: e.total, FromPrior: true,
		}
	}
	min, max := e.ring[0], e.ring[0]
	for _, d := range e.ring[:e.fill] {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	spread := max - min
	pad := func(observed model.Time) model.Time {
		base := observed + e.cfg.Slack
		return base + model.Time(float64(base)*e.cfg.Margin)
	}
	d := pad(max)
	u := pad(spread)
	if u > d {
		u = d
	}
	return Estimate{
		D: d, U: u, Epsilon: optimalSkew(e.n, u),
		Samples: e.total, WindowMin: min, WindowMax: max,
	}
}

// optimalSkew is Theorem 5.5's (1 − 1/n)·u, in integer duration math.
func optimalSkew(n int, u model.Time) model.Time {
	if n < 1 {
		return 0
	}
	return u * model.Time(n-1) / model.Time(n)
}

// Waits are Algorithm 1's four tuned delays, derived from an Estimate
// exactly as the simulator derives them from the true (u, d, ε):
// self-add d−u, execute u+ε, mutator response ε+X, accessor response
// d+ε−X.
type Waits struct {
	SelfAdd          model.Time
	Execute          model.Time
	MutatorResponse  model.Time
	AccessorResponse model.Time
}

// Tuner turns estimator snapshots into the waits live replicas consult,
// optionally scaled below the safe envelope to reproduce the premature-
// tuning dichotomy. Apply is called by the retuner loop; Waits by
// replicas on every arm — both are safe for concurrent use.
type Tuner struct {
	mu      sync.Mutex
	x       model.Time
	scale   float64
	applied bool
	cur     Estimate
	peak    Estimate
	waits   Waits
	retunes int
}

// NewTuner returns a tuner for offset parameter x. scale 1 (or 0) keeps
// the estimator's safe envelope; scale in (0, 1) deliberately under-tunes
// every wait by that factor — the live premature-tuning adversary.
func NewTuner(x model.Time, scale float64) *Tuner {
	if scale <= 0 {
		scale = 1
	}
	return &Tuner{x: x, scale: scale}
}

// Apply installs a new estimate, recomputing the waits. Re-applying an
// unchanged envelope is a no-op; a changed one after the first install
// counts as a retune.
func (t *Tuner) Apply(e Estimate) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.applied && e.D == t.cur.D && e.U == t.cur.U && e.Epsilon == t.cur.Epsilon {
		return
	}
	if t.applied {
		t.retunes++
	}
	t.applied = true
	t.cur = e
	if e.D > t.peak.D {
		t.peak.D = e.D
	}
	if e.U > t.peak.U {
		t.peak.U = e.U
	}
	if e.Epsilon > t.peak.Epsilon {
		t.peak.Epsilon = e.Epsilon
	}
	d := t.scaled(e.D)
	u := t.scaled(e.U)
	eps := t.scaled(e.Epsilon)
	t.waits = Waits{
		SelfAdd:          maxTime(0, d-u),
		Execute:          u + eps,
		MutatorResponse:  eps + t.x,
		AccessorResponse: maxTime(0, d+eps-t.x),
	}
}

func (t *Tuner) scaled(d model.Time) model.Time {
	if t.scale == 1 {
		return d
	}
	return model.Time(float64(d) * t.scale)
}

// Waits returns the currently installed waits.
func (t *Tuner) Waits() Waits {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.waits
}

// Snapshot returns the current estimate, the componentwise-largest
// envelope ever applied, and how many retunes happened after the first
// install.
func (t *Tuner) Snapshot() (cur, peak Estimate, retunes int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cur, t.peak, t.retunes
}

func maxTime(a, b model.Time) model.Time {
	if a > b {
		return a
	}
	return b
}
