package live

import (
	"testing"
	"time"

	"timebounds/internal/check"
	"timebounds/internal/model"
	"timebounds/internal/types"
)

// raceInvocations builds the lower-bound schedule shape: every process
// fires the same racing kind back-to-back at identical instants. Args are
// distinct per invocation so the rmw-register history is order-sensitive:
// replicas applying a racing wave in different orders produce divergent
// states or inconsistent return values instead of coinciding by accident.
func raceInvocations(n, rounds int, gap model.Time) []Invocation {
	var invs []Invocation
	for r := 0; r < rounds; r++ {
		at := model.Time(r) * gap
		for p := 0; p < n; p++ {
			invs = append(invs, Invocation{At: at, Proc: model.ProcessID(p), Kind: types.OpRMW, Arg: r*n + p + 1})
		}
	}
	return invs
}

// TestRunSafeChanCluster is the live smoke test: a 3-replica in-process
// cluster under racing read-modify-write load with jittered synthetic
// delays must answer every operation, linearize post hoc, and converge.
func TestRunSafeChanCluster(t *testing.T) {
	dt := types.NewRMWRegister(0)
	cfg := Config{
		N:        3,
		DataType: dt,
		Transport: &ChanTransport{
			Delay: UniformDelay(7, model.Time(200*time.Microsecond), model.Time(800*time.Microsecond)),
		},
		Estimator: EstimatorConfig{Window: 128, MinSamples: 6},
	}
	rr, err := Run(cfg, raceInvocations(3, 6, model.Time(2*time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	if rr.Pending != 0 {
		t.Fatalf("%d operations never responded", rr.Pending)
	}
	if got := rr.History.Len(); got != 18 {
		t.Fatalf("history has %d ops, want 18", got)
	}
	if rr.Diverged() {
		t.Fatalf("replicas diverged: %v", rr.States)
	}
	if rr.Estimate.FromPrior {
		t.Fatalf("estimator never left its prior (samples=%d)", rr.Samples)
	}
	if rr.Estimate.D < model.Time(200*time.Microsecond) {
		t.Fatalf("estimated d %s below the synthetic delay floor", rr.Estimate.D)
	}
	res := check.Check(dt, rr.History)
	if !res.Linearizable {
		t.Fatalf("safe live run not linearizable")
	}
}

// TestRunTCPCluster exercises the loopback-TCP transport end to end with
// a small mixed workload.
func TestRunTCPCluster(t *testing.T) {
	dt := types.NewRMWRegister(0)
	cfg := Config{
		N:         3,
		DataType:  dt,
		Transport: &TCPTransport{},
	}
	var invs []Invocation
	for r := 0; r < 4; r++ {
		at := model.Time(r) * model.Time(2*time.Millisecond)
		invs = append(invs,
			Invocation{At: at, Proc: 0, Kind: types.OpWrite, Arg: r},
			Invocation{At: at, Proc: 1, Kind: types.OpRead},
			Invocation{At: at, Proc: 2, Kind: types.OpRMW, Arg: 10},
		)
	}
	rr, err := Run(cfg, invs)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Pending != 0 {
		t.Fatalf("%d operations never responded over TCP", rr.Pending)
	}
	if rr.Diverged() {
		t.Fatalf("replicas diverged over TCP: %v", rr.States)
	}
	if !check.Check(dt, rr.History).Linearizable {
		t.Fatalf("TCP live run not linearizable")
	}
}

// TestRunUndertunedDichotomy is the satellite-3 regression: retuning
// Algorithm 1's waits well below the estimated envelope must land on one
// horn of the premature-tuning dichotomy — a linearizability violation,
// replica divergence, or some operation still paying at least the bound.
// It must NOT produce a run that is linearizable, converged, and fast.
func TestRunUndertunedDichotomy(t *testing.T) {
	dt := types.NewRMWRegister(0)
	cfg := Config{
		N:        3,
		DataType: dt,
		Transport: &ChanTransport{
			Delay: UniformDelay(11, model.Time(1*time.Millisecond), model.Time(4*time.Millisecond)),
		},
		Estimator: EstimatorConfig{Window: 128, MinSamples: 6},
		Undertune: 0.03,
	}
	rr, err := Run(cfg, raceInvocations(3, 10, model.Time(1*time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	violation := !check.Check(dt, rr.History).Linearizable
	diverged := rr.Diverged()
	// Third horn: some completed operation still paid the OOP bound d+ε
	// computed from the final estimate.
	bound := rr.Estimate.D + rr.Estimate.Epsilon
	slow := false
	for _, op := range rr.History.Ops() {
		if !op.Pending && op.Respond-op.Invoke >= bound {
			slow = true
			break
		}
	}
	if !violation && !diverged && !slow {
		t.Fatalf("under-tuned run was linearizable, converged, and fast — dichotomy falsified (estimate %s)", rr.Estimate)
	}
	t.Logf("dichotomy horn: violation=%v diverged=%v slow=%v", violation, diverged, slow)
}

// TestRunClockOffsetsStillLinearizable skews replica clocks within the
// estimated envelope; Algorithm 1 must absorb the skew.
func TestRunClockOffsetsStillLinearizable(t *testing.T) {
	dt := types.NewCounter()
	cfg := Config{
		N:        3,
		DataType: dt,
		Transport: &ChanTransport{
			Delay: FixedDelay(model.Time(500 * time.Microsecond)),
		},
		ClockOffsets: []model.Time{0, model.Time(100 * time.Microsecond), -model.Time(80 * time.Microsecond)},
	}
	var invs []Invocation
	for r := 0; r < 5; r++ {
		at := model.Time(r) * model.Time(2*time.Millisecond)
		for p := 0; p < 3; p++ {
			invs = append(invs, Invocation{At: at, Proc: model.ProcessID(p), Kind: types.OpIncrement})
		}
	}
	rr, err := Run(cfg, invs)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Pending != 0 {
		t.Fatalf("%d operations never responded", rr.Pending)
	}
	if rr.Diverged() {
		t.Fatalf("replicas diverged under clock skew: %v", rr.States)
	}
	if !check.Check(dt, rr.History).Linearizable {
		t.Fatalf("skewed live run not linearizable")
	}
}

func TestConfigValidation(t *testing.T) {
	dt := types.NewRMWRegister(0)
	cases := []Config{
		{N: 0, DataType: dt},
		{N: 3},
		{N: 3, DataType: dt, X: -1},
		{N: 3, DataType: dt, Undertune: 1.5},
		{N: 3, DataType: dt, ClockOffsets: []model.Time{1, 2}},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg, nil); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
}
