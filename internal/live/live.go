// Package live runs Algorithm 1 (Wang 2011, Chapter V) as a wall-clock
// cluster: one goroutine-backed replica per process, exchanging
// timestamped messages over a pluggable Transport (in-process channels,
// or TCP over localhost), and recording a history.History with real
// instants so the Wing–Gong island checker verifies the run post hoc.
//
// Where the simulator takes the partial-synchrony parameters (u, d) as
// inputs, the live runtime must discover them: every message carries its
// sender's send-time clock, receivers feed the observed one-way delays
// into a windowed Estimator, and a Tuner turns each padded (d̂, û, ε̂)
// snapshot into Algorithm 1's four waits, retuned periodically while the
// cluster runs. Tuning at or above the estimated envelope preserves the
// Chapter V guarantees against the delays actually realized; deliberately
// scaling the waits below it (Tuner scale < 1) reproduces the premature-
// tuning dichotomy of the lower-bound experiments — a linearizability
// violation, replica divergence, or latency at the bound.
//
// This package is intentionally wall-clock (time.Now via a monotonic
// epoch, time.AfterFunc timers) and is therefore exempt from the tbvet
// determinism analyzer that polices the simulator packages; see
// docs/STATIC_ANALYSIS.md.
package live

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/spec"
)

// Invocation is one scheduled operation of a live load: offered to
// process Proc at offset At from the moment the load phase starts (after
// warm-up). Processes are closed-loop: an invocation whose process still
// has a pending operation waits for the response and records the offered
// instant as its arrival.
type Invocation struct {
	At   model.Time
	Proc model.ProcessID
	Kind spec.OpKind
	Arg  spec.Value
}

// Config configures one live cluster run.
type Config struct {
	// N is the number of replicas (one goroutine cluster member each).
	N int
	// X is Algorithm 1's accessor/mutator latency tradeoff parameter.
	X model.Time
	// DataType is the replicated object.
	DataType spec.DataType
	// Transport connects the replicas; nil means an in-process
	// ChanTransport with no synthetic delay.
	Transport Transport
	// Estimator configures the (u, d) estimator window and safety margin.
	Estimator EstimatorConfig
	// Undertune, when in (0, 1), scales every tuned wait below the
	// estimated envelope — the live premature-tuning adversary. 0 (or 1)
	// keeps the safe envelope.
	Undertune float64
	// WarmupProbes is how many probe rounds each replica broadcasts
	// before load starts (default 24); the estimator must leave its
	// prior before the first real operation.
	WarmupProbes int
	// ProbeSpacing separates warm-up probe rounds (default 500µs).
	ProbeSpacing model.Time
	// RetuneEvery is the period of the retuner loop re-snapshotting the
	// estimator while load runs (default 2ms; negative disables).
	RetuneEvery model.Time
	// ClockOffsets optionally skews each replica's local clock (length
	// N). Unlike the simulator, live clock skew defaults to zero — the
	// replicas share the host's monotonic clock.
	ClockOffsets []model.Time
	// Drain bounds how long Run waits after the last scheduled
	// invocation for responses and replica quiescence (default 5s).
	Drain model.Time
}

func (c Config) withDefaults() Config {
	if c.Transport == nil {
		c.Transport = &ChanTransport{}
	}
	if c.WarmupProbes <= 0 {
		c.WarmupProbes = 24
	}
	if c.ProbeSpacing <= 0 {
		c.ProbeSpacing = 500 * time.Microsecond
	}
	if c.RetuneEvery == 0 {
		c.RetuneEvery = 2 * time.Millisecond
	}
	if c.Drain <= 0 {
		c.Drain = 5 * time.Second
	}
	return c
}

func (c Config) validate() error {
	if c.N < 1 {
		return fmt.Errorf("live: need n >= 1 replicas, got %d", c.N)
	}
	if c.DataType == nil {
		return fmt.Errorf("live: no data type")
	}
	if c.X < 0 {
		return fmt.Errorf("live: negative X %s", c.X)
	}
	if c.Undertune < 0 || c.Undertune > 1 {
		return fmt.Errorf("live: undertune factor %v outside [0, 1]", c.Undertune)
	}
	if c.ClockOffsets != nil && len(c.ClockOffsets) != c.N {
		return fmt.Errorf("live: %d clock offsets for %d replicas", len(c.ClockOffsets), c.N)
	}
	return nil
}

// RunResult is what one live cluster run produces: the recorded history
// (real wall-clock instants relative to the run epoch), the estimator's
// final and peak-applied envelopes, and the final state encoding of each
// replica for the convergence check.
type RunResult struct {
	// History holds every operation with wall-clock invoke/respond
	// instants, ready for the post-hoc linearizability check.
	History *history.History
	// Estimate is the estimator's final padded envelope.
	Estimate Estimate
	// Peak is the componentwise-largest envelope the tuner ever applied;
	// latencies of safe runs are bounded by waits derived from it.
	Peak Estimate
	// Retunes counts envelope changes applied after the initial install.
	Retunes int
	// Samples is the total number of one-way delays observed.
	Samples int
	// Warmup and Elapsed are the wall time spent before load and in
	// total, respectively.
	Warmup, Elapsed model.Time
	// States are the per-replica final state encodings; divergence
	// (unequal entries) is one horn of the premature-tuning dichotomy.
	States []string
	// Pending counts operations that never responded within Drain.
	Pending int
}

// Diverged reports whether the replicas' final states disagree.
func (r RunResult) Diverged() bool {
	for _, s := range r.States[1:] {
		if s != r.States[0] {
			return true
		}
	}
	return false
}

// recorder wraps a history.History with the mutex and monotonic epoch
// clock the concurrent live cluster needs, and gives each operation a
// completion channel so closed-loop drivers can await responses.
type recorder struct {
	mu   sync.Mutex
	h    *history.History
	now  func() model.Time
	done map[history.OpID]chan struct{}
}

func newRecorder(now func() model.Time) *recorder {
	return &recorder{h: history.New(), now: now, done: make(map[history.OpID]chan struct{})}
}

// invoke records an invocation offered at arrival and invoked now,
// returning the op id and a channel closed on response.
func (rec *recorder) invoke(proc model.ProcessID, kind spec.OpKind, arg spec.Value, arrival model.Time) (history.OpID, <-chan struct{}) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	id := rec.h.InvokeArrived(proc, kind, arg, rec.now(), arrival)
	ch := make(chan struct{})
	rec.done[id] = ch
	return id, ch
}

func (rec *recorder) respond(id history.OpID, ret spec.Value) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if err := rec.h.Respond(id, ret, rec.now()); err != nil {
		return // late duplicate after a drain timeout gave up on the op
	}
	if ch, ok := rec.done[id]; ok {
		close(ch)
		delete(rec.done, id)
	}
}

func (rec *recorder) complete() bool {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.h.Complete()
}

// Run executes one live cluster run: open the transport, warm the
// estimator with probe traffic, start the retuner, drive the scheduled
// invocations closed-loop per process, then drain, settle, and collect
// the history and final states.
func Run(cfg Config, invs []Invocation) (RunResult, error) {
	if err := cfg.validate(); err != nil {
		return RunResult{}, err
	}
	cfg = cfg.withDefaults()

	eps, err := cfg.Transport.Open(cfg.N)
	if err != nil {
		return RunResult{}, fmt.Errorf("live: transport open: %w", err)
	}

	epoch := time.Now()
	now := func() model.Time { return model.Time(time.Since(epoch)) }
	rec := newRecorder(now)
	est := NewEstimator(cfg.N, cfg.Estimator)
	scale := cfg.Undertune
	if scale == 0 {
		scale = 1
	}
	tun := NewTuner(cfg.X, scale)
	tun.Apply(est.Snapshot()) // install the prior

	replicas := make([]*replica, cfg.N)
	for i := range replicas {
		off := model.Time(0)
		if cfg.ClockOffsets != nil {
			off = cfg.ClockOffsets[i]
		}
		clock := func(off model.Time) func() model.Time {
			return func() model.Time { return now() + off }
		}(off)
		replicas[i] = newReplica(model.ProcessID(i), cfg.N, cfg.X, cfg.DataType,
			eps[i], tun, est, rec, clock)
	}
	for _, r := range replicas {
		r.start()
	}

	// Warm-up: probe rounds until the estimator leaves its prior, then
	// install the first observed envelope before any load.
	for k := 0; k < cfg.WarmupProbes; k++ {
		for _, r := range replicas {
			r.probe()
		}
		time.Sleep(time.Duration(cfg.ProbeSpacing))
	}
	warmupDeadline := time.Now().Add(time.Duration(cfg.Drain))
	for cfg.N > 1 && est.Snapshot().FromPrior && time.Now().Before(warmupDeadline) {
		for _, r := range replicas {
			r.probe()
		}
		time.Sleep(time.Duration(cfg.ProbeSpacing))
	}
	tun.Apply(est.Snapshot())
	warmup := now()

	// Retuner: periodically re-snapshot the estimator while load runs.
	stopRetune := make(chan struct{})
	if cfg.RetuneEvery > 0 {
		go func() {
			t := time.NewTicker(time.Duration(cfg.RetuneEvery))
			defer t.Stop()
			for {
				select {
				case <-t.C:
					tun.Apply(est.Snapshot())
				case <-stopRetune:
					return
				}
			}
		}()
	}

	// Drive: one closed-loop goroutine per process, sleeping to each
	// invocation's offered instant and awaiting the previous response.
	byProc := make(map[model.ProcessID][]Invocation)
	for _, inv := range invs {
		byProc[inv.Proc] = append(byProc[inv.Proc], inv)
	}
	var wg sync.WaitGroup
	for proc, seq := range byProc {
		if int(proc) < 0 || int(proc) >= cfg.N {
			close(stopRetune)
			return RunResult{}, fmt.Errorf("live: invocation for unknown process %d", int(proc))
		}
		sort.SliceStable(seq, func(i, j int) bool { return seq[i].At < seq[j].At })
		wg.Add(1)
		go func(r *replica, seq []Invocation) {
			defer wg.Done()
			var prev <-chan struct{}
			for _, inv := range seq {
				target := warmup + inv.At
				if d := target - now(); d > 0 {
					time.Sleep(time.Duration(d))
				}
				if prev != nil {
					select {
					case <-prev:
					case <-time.After(time.Duration(cfg.Drain)):
						return // a lost response; leave the rest unissued
					}
				}
				id, ch := rec.invoke(inv.Proc, inv.Kind, inv.Arg, target)
				r.invoke(id, inv.Kind, inv.Arg)
				prev = ch
			}
		}(replicas[proc], seq)
	}
	wg.Wait()

	// Drain: wait for every response, then for replica quiescence (all
	// queues empty, no armed timers) so the convergence check reads
	// settled states.
	deadline := time.Now().Add(time.Duration(cfg.Drain))
	for !rec.complete() && time.Now().Before(deadline) {
		time.Sleep(500 * time.Microsecond)
	}
	settled := func() bool {
		for _, r := range replicas {
			if !r.idle() {
				return false
			}
		}
		return true
	}
	for !settled() && time.Now().Before(deadline) {
		time.Sleep(500 * time.Microsecond)
	}
	close(stopRetune)

	cur, peak, retunes := tun.Snapshot()
	states := make([]string, cfg.N)
	for i, r := range replicas {
		r.stop()
		states[i] = r.stateEncoding()
	}
	for _, ep := range eps {
		_ = ep.Close()
	}
	for _, r := range replicas {
		<-r.done
	}

	rec.mu.Lock()
	pending := rec.h.PendingCount()
	h := rec.h
	rec.mu.Unlock()

	return RunResult{
		History:  h,
		Estimate: cur,
		Peak:     peak,
		Retunes:  retunes,
		Samples:  est.Samples(),
		Warmup:   warmup,
		Elapsed:  now(),
		States:   states,
		Pending:  pending,
	}, nil
}
