package live

import (
	"sync"
	"time"

	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/spec"
)

// execHeap is the live To_Execute priority queue, keyed by timestamp.
// Unlike the simulator twin this is not an allocation hot path, but the
// timestamp-order semantics are identical.
type execHeap []Entry

func (h *execHeap) push(e Entry) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q[i].TS.Less(q[parent].TS) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

func (h *execHeap) popMin() Entry {
	q := *h
	n := len(q) - 1
	top := q[0]
	q[0] = q[n]
	q[n] = Entry{}
	q = q[:n]
	*h = q
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && q[r].TS.Less(q[l].TS) {
			least = r
		}
		if !q[least].TS.Less(q[i].TS) {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	return top
}

func (h execHeap) peekMin() (Entry, bool) {
	if len(h) == 0 {
		return Entry{}, false
	}
	return h[0], true
}

// replica is one live process of Algorithm 1: the wall-clock twin of
// core.Replica. Where the simulator replica rides deterministic event-loop
// timers, the live replica arms time.AfterFunc callbacks whose durations
// come from the Tuner on every arm — so a mid-run retune changes the
// waits of subsequently armed timers without desynchronizing anything
// (there is no due-time FIFO to keep in step; each callback closes over
// its own payload).
type replica struct {
	id    model.ProcessID
	n     int
	x     model.Time
	dt    spec.DataType
	ep    Endpoint
	tun   *Tuner
	est   *Estimator
	rec   *recorder
	clock func() model.Time // skewed local clock, safe without the lock

	mu         sync.Mutex
	local      spec.State
	toExecute  execHeap
	pendingOOP map[model.Timestamp]history.OpID
	applied    int
	lastStamp  model.Time
	timers     int
	stopped    bool

	done chan struct{} // closed when the receive loop exits
}

func newReplica(id model.ProcessID, n int, x model.Time, dt spec.DataType,
	ep Endpoint, tun *Tuner, est *Estimator, rec *recorder, clock func() model.Time) *replica {
	return &replica{
		id: id, n: n, x: x, dt: dt, ep: ep, tun: tun, est: est, rec: rec,
		clock:      clock,
		local:      dt.InitialState(),
		pendingOOP: make(map[model.Timestamp]history.OpID),
		done:       make(chan struct{}),
	}
}

// start launches the receive loop. It runs until the endpoint's Recv
// channel closes; even after stop it keeps draining (and observing
// delays of) in-flight messages so transport pumps never block.
func (r *replica) start() {
	go func() {
		defer close(r.done)
		for m := range r.ep.Recv() {
			r.est.Observe(r.clock() - m.SentAt)
			if m.Probe {
				continue
			}
			r.mu.Lock()
			if !r.stopped {
				r.enqueueLocked(m.Entry)
			}
			r.mu.Unlock()
		}
	}()
}

// afterLocked arms a timer that runs f under the replica lock, skipped
// if the replica has stopped by then. The caller must hold the lock
// (every arm site does) — the timer count rides the same lock.
func (r *replica) afterLocked(d model.Time, f func()) {
	r.timers++
	time.AfterFunc(time.Duration(d), func() {
		r.mu.Lock()
		r.timers--
		if !r.stopped {
			f()
		}
		r.mu.Unlock()
	})
}

// stamp returns a fresh ⟨clock, pid⟩ timestamp, strictly monotonic per
// replica: two invocations landing on the same wall-clock nanosecond
// must not collide in the total order (or in pendingOOP).
func (r *replica) stampLocked() model.Timestamp {
	c := r.clock()
	if c <= r.lastStamp {
		c = r.lastStamp + 1
	}
	r.lastStamp = c
	return model.Timestamp{Clock: c, Proc: r.id}
}

// probe broadcasts one estimator warm-up probe.
func (r *replica) probe() {
	for p := 0; p < r.n; p++ {
		if model.ProcessID(p) == r.id {
			continue
		}
		_ = r.ep.Send(model.ProcessID(p), Message{From: r.id, SentAt: r.clock(), Probe: true})
	}
}

// invoke runs Algorithm 1's per-class invocation step with the currently
// tuned waits. The caller must have recorded the invocation in the
// recorder first (the response can fire within microseconds).
func (r *replica) invoke(id history.OpID, kind spec.OpKind, arg spec.Value) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return
	}
	w := r.tun.Waits()
	switch r.dt.Class(kind) {
	case spec.ClassPureAccessor:
		// Timestamp ⟨clock − X, pid⟩: pretend to be invoked X earlier; at
		// d̂+ε̂−X execute everything smaller and evaluate locally.
		ts := model.Timestamp{Clock: r.clock() - r.x, Proc: r.id}
		k, a := kind, arg
		r.afterLocked(w.AccessorResponse, func() {
			r.executeUpToLocked(ts, false)
			_, ret := r.dt.Apply(r.local, k, a)
			r.rec.respond(id, ret)
		})
	case spec.ClassPureMutator:
		r.stampAndBroadcastLocked(kind, arg, w)
		r.afterLocked(w.MutatorResponse, func() { r.rec.respond(id, nil) })
	default: // OOP: respond upon local execution.
		e := r.stampAndBroadcastLocked(kind, arg, w)
		r.pendingOOP[e.TS] = id
	}
}

// stampAndBroadcastLocked stamps a MOP/OOP entry, broadcasts it, and arms
// the d̂−û self-insertion timer.
func (r *replica) stampAndBroadcastLocked(kind spec.OpKind, arg spec.Value, w Waits) Entry {
	e := Entry{TS: r.stampLocked(), Kind: kind, Arg: arg}
	for p := 0; p < r.n; p++ {
		if model.ProcessID(p) == r.id {
			continue
		}
		_ = r.ep.Send(model.ProcessID(p), Message{From: r.id, SentAt: r.clock(), Entry: e})
	}
	r.afterLocked(w.SelfAdd, func() { r.enqueueLocked(e) })
	return e
}

// enqueueLocked adds an entry to To_Execute and arms its û+ε̂ execution
// timer with the waits tuned at arming time.
func (r *replica) enqueueLocked(e Entry) {
	r.toExecute.push(e)
	ts := e.TS
	r.afterLocked(r.tun.Waits().Execute, func() { r.executeUpToLocked(ts, true) })
}

// executeUpToLocked applies every buffered entry with timestamp ≤ ts
// (inclusive) or < ts, in timestamp order, responding to locally invoked
// OOP operations as they apply — exactly core.Replica.executeUpTo.
func (r *replica) executeUpToLocked(ts model.Timestamp, inclusive bool) {
	for {
		e, ok := r.toExecute.peekMin()
		if !ok {
			return
		}
		cmp := e.TS.Compare(ts)
		if cmp > 0 || (!inclusive && cmp == 0) {
			return
		}
		r.toExecute.popMin()
		next, ret := r.dt.Apply(r.local, e.Kind, e.Arg)
		r.local = next
		r.applied++
		if id, mine := r.pendingOOP[e.TS]; mine && e.TS.Proc == r.id {
			delete(r.pendingOOP, e.TS)
			r.rec.respond(id, ret)
		}
	}
}

// idle reports whether the replica has nothing buffered and no armed
// timers — quiescence, once the transport has nothing in flight.
func (r *replica) idle() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.toExecute) == 0 && r.timers == 0
}

// stop freezes the replica: armed timers and late messages become no-ops.
func (r *replica) stop() {
	r.mu.Lock()
	r.stopped = true
	r.mu.Unlock()
}

// stateEncoding returns the canonical encoding of the local copy.
func (r *replica) stateEncoding() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dt.EncodeState(r.local)
}

// appliedCount returns how many entries the local copy has executed.
func (r *replica) appliedCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}
