package live

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"timebounds/internal/model"
	"timebounds/internal/spec"
)

// Message is the wire unit replicas exchange: either an estimator probe or
// one timestamped operation entry. Every message carries the sender's
// local clock at send time (SentAt), so the receiver can sample the
// one-way delay — the raw material of the online (u, d) estimator.
type Message struct {
	// From is the sending process.
	From model.ProcessID
	// SentAt is the sender's local clock when the message left it.
	SentAt model.Time
	// Probe marks an estimator warm-up probe carrying no operation.
	Probe bool
	// Entry is the broadcast operation (valid when !Probe).
	Entry Entry
}

// Entry is one timestamped operation, the live analogue of the simulator
// replica's To_Execute element.
type Entry struct {
	TS   model.Timestamp
	Kind spec.OpKind
	Arg  spec.Value
}

// Transport connects the n replicas of one live cluster. Implementations
// must deliver every accepted message exactly once (no loss, no
// duplication); they may reorder freely — Algorithm 1's timestamp order
// absorbs reordering as long as the tuned waits cover the real delays.
type Transport interface {
	// Name is the transport's stable identifier for reports and labels.
	Name() string
	// Open connects n endpoints, one per process, ready to exchange
	// messages. The caller owns the endpoints and must Close each.
	Open(n int) ([]Endpoint, error)
}

// Endpoint is one process's attachment to the transport. Send must not
// block the caller (replicas send while holding their own lock); Recv
// yields inbound messages until Close.
type Endpoint interface {
	Send(to model.ProcessID, m Message) error
	Recv() <-chan Message
	Close() error
}

// inbox is an unbounded FIFO feeding an Endpoint's Recv channel: pushes
// never block the producer (senders may hold replica locks), and a pump
// goroutine drains the queue into the channel. Close drains what is
// queued, then closes the channel.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []Message
	closed bool
	out    chan Message
}

func newInbox() *inbox {
	b := &inbox{out: make(chan Message, 64)}
	b.cond = sync.NewCond(&b.mu)
	go b.pump()
	return b
}

func (b *inbox) push(m Message) {
	b.mu.Lock()
	if !b.closed {
		b.q = append(b.q, m)
		b.cond.Signal()
	}
	b.mu.Unlock()
}

func (b *inbox) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Signal()
	b.mu.Unlock()
}

func (b *inbox) pump() {
	for {
		b.mu.Lock()
		for len(b.q) == 0 && !b.closed {
			b.cond.Wait()
		}
		if len(b.q) == 0 && b.closed {
			b.mu.Unlock()
			close(b.out)
			return
		}
		m := b.q[0]
		b.q = b.q[1:]
		b.mu.Unlock()
		b.out <- m
	}
}

// DelayFunc draws the synthetic one-way delay of the k-th message sent on
// the from→to link. Returning 0 delivers as fast as the scheduler allows.
type DelayFunc func(from, to model.ProcessID, k int) model.Time

// UniformDelay returns a seeded DelayFunc drawing delays uniformly from
// [min, max] — the live analogue of the simulator's random delay
// adversary. The draw sequence is deterministic given the seed, though
// the concurrent send order that consumes it is not.
func UniformDelay(seed int64, min, max model.Time) DelayFunc {
	if max < min {
		max = min
	}
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func(model.ProcessID, model.ProcessID, int) model.Time {
		mu.Lock()
		defer mu.Unlock()
		if max == min {
			return min
		}
		return min + model.Time(rng.Int63n(int64(max-min)+1))
	}
}

// FixedDelay returns a DelayFunc imposing the same delay on every message.
func FixedDelay(d model.Time) DelayFunc {
	return func(model.ProcessID, model.ProcessID, int) model.Time { return d }
}

// AlternatingDelay returns a DelayFunc alternating between lo and hi per
// link, the live analogue of the simulator's extremal adversary.
func AlternatingDelay(lo, hi model.Time) DelayFunc {
	return func(_, _ model.ProcessID, k int) model.Time {
		if k%2 == 0 {
			return hi
		}
		return lo
	}
}

// ChanTransport is the in-process transport: per-endpoint unbounded
// queues bridged by goroutines, with an optional synthetic delay policy.
// With a Delay policy drawn from the scenario's (d, u) envelope the
// in-process cluster has a known ground truth for the estimator to
// discover; without one, delivery latency is whatever the Go scheduler
// gives (microseconds on an idle host).
type ChanTransport struct {
	// Delay optionally imposes a synthetic one-way delay per message;
	// nil delivers immediately.
	Delay DelayFunc
}

// Name implements Transport.
func (t *ChanTransport) Name() string { return "chan" }

// Open implements Transport.
func (t *ChanTransport) Open(n int) ([]Endpoint, error) {
	if n < 1 {
		return nil, fmt.Errorf("live: chan transport needs n >= 1, got %d", n)
	}
	boxes := make([]*inbox, n)
	for i := range boxes {
		boxes[i] = newInbox()
	}
	eps := make([]Endpoint, n)
	counts := make([][]int, n)
	for i := range eps {
		counts[i] = make([]int, n)
		eps[i] = &chanEndpoint{self: model.ProcessID(i), tr: t, boxes: boxes, sent: counts[i]}
	}
	return eps, nil
}

type chanEndpoint struct {
	self  model.ProcessID
	tr    *ChanTransport
	boxes []*inbox
	mu    sync.Mutex
	sent  []int // per-destination message counter, guarded by mu
}

func (e *chanEndpoint) Send(to model.ProcessID, m Message) error {
	if int(to) < 0 || int(to) >= len(e.boxes) {
		return fmt.Errorf("live: send to unknown process %d", int(to))
	}
	box := e.boxes[to]
	var delay model.Time
	if e.tr.Delay != nil {
		e.mu.Lock()
		k := e.sent[to]
		e.sent[to]++
		e.mu.Unlock()
		delay = e.tr.Delay(e.self, to, k)
	}
	if delay <= 0 {
		box.push(m)
		return nil
	}
	time.AfterFunc(delay, func() { box.push(m) })
	return nil
}

func (e *chanEndpoint) Recv() <-chan Message { return e.boxes[e.self].out }

func (e *chanEndpoint) Close() error {
	e.boxes[e.self].close()
	return nil
}
