package live

import (
	"testing"
	"time"

	"timebounds/internal/model"
)

// adversarialSequences are delay traces engineered to stress the
// estimator envelope: traffic bursts, steady drift ramps, and
// heavy-tailed spikes that a naive averaging estimator would smooth away.
func adversarialSequences() map[string][]model.Time {
	ms := func(f float64) model.Time { return model.Time(f * float64(time.Millisecond)) }
	seqs := map[string][]model.Time{}

	// Burst: long quiet baseline, then clustered 10x spikes, then quiet.
	var burst []model.Time
	for i := 0; i < 120; i++ {
		burst = append(burst, ms(1))
	}
	for i := 0; i < 12; i++ {
		burst = append(burst, ms(10), ms(9.5), ms(1))
	}
	for i := 0; i < 120; i++ {
		burst = append(burst, ms(1.1))
	}
	seqs["burst"] = burst

	// Drift ramp: delays grow steadily (clock or load drift), then fall.
	var ramp []model.Time
	for i := 0; i < 200; i++ {
		ramp = append(ramp, ms(0.5)+model.Time(i)*ms(0.05))
	}
	for i := 200; i > 0; i-- {
		ramp = append(ramp, ms(0.5)+model.Time(i)*ms(0.05))
	}
	seqs["drift-ramp"] = ramp

	// Heavy tail: mostly sub-millisecond with rare 40x outliers.
	var tail []model.Time
	for i := 0; i < 400; i++ {
		if i%97 == 0 {
			tail = append(tail, ms(40))
		} else {
			tail = append(tail, ms(0.4)+model.Time(i%7)*ms(0.03))
		}
	}
	seqs["heavy-tail"] = tail

	// Zero floor: negative skew-corrupted observations must clamp, not
	// poison the spread.
	seqs["negative-clamp"] = []model.Time{
		ms(1), -ms(2), ms(3), -ms(1), ms(0.5), ms(2), -ms(5), ms(1),
		ms(4), ms(1), ms(0.1), ms(2.5), ms(1), ms(1), ms(1), ms(1),
	}

	return seqs
}

// TestEstimatorEnvelopeNeverDipsBelowWindow is the satellite-3 safety
// property: once past MinSamples, the padded estimate must dominate the
// realized extremes of the observation window — D ≥ window max + slack
// and U ≥ window spread + slack — after every single observation, for
// every adversarial sequence.
func TestEstimatorEnvelopeNeverDipsBelowWindow(t *testing.T) {
	cfg := EstimatorConfig{Window: 64, MinSamples: 8, Slack: model.Time(time.Millisecond)}
	for name, seq := range adversarialSequences() {
		t.Run(name, func(t *testing.T) {
			e := NewEstimator(3, cfg)
			var window []model.Time
			for i, d := range seq {
				e.Observe(d)
				obs := d
				if obs < 0 {
					obs = 0 // the estimator clamps skew-negative samples
				}
				window = append(window, obs)
				if len(window) > cfg.Window {
					window = window[1:]
				}
				est := e.Snapshot()
				if est.FromPrior {
					if i >= cfg.MinSamples {
						t.Fatalf("sample %d: still on prior after %d >= MinSamples observations", i, i+1)
					}
					continue
				}
				wmax, wmin := window[0], window[0]
				for _, w := range window {
					if w > wmax {
						wmax = w
					}
					if w < wmin {
						wmin = w
					}
				}
				if est.D < wmax+cfg.Slack {
					t.Fatalf("sample %d: D estimate %s dips below window max %s + slack %s", i, est.D, wmax, cfg.Slack)
				}
				if spread := wmax - wmin; est.U < spread+cfg.Slack {
					t.Fatalf("sample %d: U estimate %s dips below window spread %s + slack %s", i, est.U, spread, cfg.Slack)
				}
				if est.U > est.D {
					t.Fatalf("sample %d: U %s exceeds D %s (inadmissible envelope)", i, est.U, est.D)
				}
				if est.Epsilon <= 0 {
					t.Fatalf("sample %d: non-positive epsilon %s", i, est.Epsilon)
				}
			}
		})
	}
}

func TestEstimatorPriorGovernsUntilMinSamples(t *testing.T) {
	prior := model.Time(25 * time.Millisecond)
	e := NewEstimator(4, EstimatorConfig{MinSamples: 5, Prior: prior})
	for i := 0; i < 4; i++ {
		est := e.Snapshot()
		if !est.FromPrior || est.D != prior || est.U != prior {
			t.Fatalf("before MinSamples: want prior envelope {D,U}=%s, got %+v", prior, est)
		}
		e.Observe(model.Time(time.Millisecond))
	}
	e.Observe(model.Time(time.Millisecond))
	if est := e.Snapshot(); est.FromPrior {
		t.Fatalf("after MinSamples: still on prior: %+v", est)
	}
	if e.Samples() != 5 {
		t.Fatalf("Samples() = %d, want 5", e.Samples())
	}
}

func TestEstimatorEpsilonIsOptimalSkew(t *testing.T) {
	e := NewEstimator(4, EstimatorConfig{MinSamples: 1, Margin: -1, Slack: 1})
	e.Observe(model.Time(8 * time.Millisecond))
	est := e.Snapshot()
	// Margin < 0 disables padding and Slack 1ns is negligible: the
	// envelope is essentially the single observation.
	if est.D != model.Time(8*time.Millisecond)+1 {
		t.Fatalf("D = %s, want the single observation + 1ns slack", est.D)
	}
	if want := est.U * 3 / 4; est.Epsilon != want {
		t.Fatalf("Epsilon = %s, want (1-1/n)*U = %s", est.Epsilon, want)
	}
}

func TestTunerDerivesAlgorithmOneWaits(t *testing.T) {
	x := model.Time(2 * time.Millisecond)
	tun := NewTuner(x, 1)
	est := Estimate{
		D:       model.Time(10 * time.Millisecond),
		U:       model.Time(4 * time.Millisecond),
		Epsilon: model.Time(3 * time.Millisecond),
	}
	tun.Apply(est)
	w := tun.Waits()
	if want := est.D - est.U; w.SelfAdd != want {
		t.Fatalf("SelfAdd = %s, want d-u = %s", w.SelfAdd, want)
	}
	if want := est.U + est.Epsilon; w.Execute != want {
		t.Fatalf("Execute = %s, want u+eps = %s", w.Execute, want)
	}
	if want := est.Epsilon + x; w.MutatorResponse != want {
		t.Fatalf("MutatorResponse = %s, want eps+X = %s", w.MutatorResponse, want)
	}
	if want := est.D + est.Epsilon - x; w.AccessorResponse != want {
		t.Fatalf("AccessorResponse = %s, want d+eps-X = %s", w.AccessorResponse, want)
	}
}

func TestTunerUndertuneScalesWaits(t *testing.T) {
	est := Estimate{
		D:       model.Time(10 * time.Millisecond),
		U:       model.Time(4 * time.Millisecond),
		Epsilon: model.Time(3 * time.Millisecond),
	}
	full := NewTuner(0, 1)
	full.Apply(est)
	under := NewTuner(0, 0.5)
	under.Apply(est)
	fw, uw := full.Waits(), under.Waits()
	if uw.SelfAdd*2 != fw.SelfAdd || uw.Execute*2 != fw.Execute {
		t.Fatalf("undertune 0.5 should halve waits: full %+v under %+v", fw, uw)
	}
	if uw.AccessorResponse*2 != fw.AccessorResponse {
		t.Fatalf("undertune 0.5 should halve accessor wait: full %+v under %+v", fw, uw)
	}
}

func TestTunerTracksPeakAndRetunes(t *testing.T) {
	tun := NewTuner(0, 1)
	a := Estimate{D: model.Time(10 * time.Millisecond), U: model.Time(6 * time.Millisecond), Epsilon: model.Time(4 * time.Millisecond)}
	b := Estimate{D: model.Time(14 * time.Millisecond), U: model.Time(3 * time.Millisecond), Epsilon: model.Time(2 * time.Millisecond)}
	tun.Apply(a)
	tun.Apply(a) // identical envelope: not a retune
	tun.Apply(b)
	cur, peak, retunes := tun.Snapshot()
	if retunes != 1 {
		t.Fatalf("retunes = %d, want 1 (initial install is free, duplicates are no-ops)", retunes)
	}
	if cur != b {
		t.Fatalf("cur = %+v, want the last applied envelope", cur)
	}
	if peak.D != b.D || peak.U != a.U || peak.Epsilon != a.Epsilon {
		t.Fatalf("peak = %+v, want componentwise max of %+v and %+v", peak, a, b)
	}
}
