package runs

import (
	"fmt"

	"timebounds/internal/model"
)

// Appendable reports whether run r2 can be appended to run r1
// (Chapter III.B.3): r1's views must all be finite, each process's first
// step in r2 must come strictly after its last step in r1, and the clock
// functions must agree. (The state-continuity condition is behavioural and
// holds by construction when both runs come from the same state machines;
// it is not observable from the trace.)
func Appendable(r1, r2 Run) error {
	if len(r1.Views) != len(r2.Views) {
		return fmt.Errorf("runs: view counts differ: %d vs %d", len(r1.Views), len(r2.Views))
	}
	for i := range r1.Views {
		v1, v2 := r1.Views[i], r2.Views[i]
		if v1.End == model.Infinity {
			return fmt.Errorf("runs: %s view in r1 is not finite", v1.Proc)
		}
		if v1.ClockOffset != v2.ClockOffset {
			return fmt.Errorf("runs: %s clock functions differ (%s vs %s)",
				v1.Proc, v1.ClockOffset, v2.ClockOffset)
		}
		if len(v1.Steps) > 0 && len(v2.Steps) > 0 {
			last := v1.Steps[len(v1.Steps)-1].RealTime
			first := v2.Steps[0].RealTime
			if first <= last {
				return fmt.Errorf("runs: %s first step of r2 at %s not after last step of r1 at %s",
					v1.Proc, first, last)
			}
		}
	}
	return nil
}

// Append concatenates r2 onto r1 (Claim B.4: the result is a run). It
// returns an error if the runs are not appendable.
func Append(r1, r2 Run) (Run, error) {
	if err := Appendable(r1, r2); err != nil {
		return Run{}, err
	}
	out := Run{Params: r1.Params, Views: make([]TimedView, len(r1.Views))}
	for i := range r1.Views {
		v1, v2 := r1.Views[i], r2.Views[i]
		nv := TimedView{
			Proc:        v1.Proc,
			ClockOffset: v1.ClockOffset,
			End:         v2.End,
			Steps:       make([]Step, 0, len(v1.Steps)+len(v2.Steps)),
		}
		nv.Steps = append(nv.Steps, v1.Steps...)
		nv.Steps = append(nv.Steps, v2.Steps...)
		out.Views[i] = nv
	}
	seq := 0
	for _, m := range r1.Msgs {
		nm := m
		nm.Seq = seq
		seq++
		out.Msgs = append(out.Msgs, nm)
	}
	for _, m := range r2.Msgs {
		nm := m
		nm.Seq = seq
		seq++
		out.Msgs = append(out.Msgs, nm)
	}
	return out, nil
}

// Truncate returns the prefix of r that ends (exclusively) at the given
// per-process horizon; a single horizon value applies to all views when
// len(cut) == 1. Messages sent beyond the sender's horizon are dropped;
// messages received beyond the recipient's horizon become unreceived.
func Truncate(r Run, cut []model.Time) (Run, error) {
	if len(cut) == 1 {
		full := make([]model.Time, len(r.Views))
		for i := range full {
			full[i] = cut[0]
		}
		cut = full
	}
	if len(cut) != len(r.Views) {
		return Run{}, fmt.Errorf("runs: %d horizons for %d views", len(cut), len(r.Views))
	}
	out := Run{Params: r.Params, Views: make([]TimedView, len(r.Views))}
	for i, v := range r.Views {
		nv := TimedView{Proc: v.Proc, ClockOffset: v.ClockOffset, End: minTime(v.End, cut[i])}
		for _, st := range v.Steps {
			if st.RealTime < nv.End {
				nv.Steps = append(nv.Steps, st)
			}
		}
		out.Views[i] = nv
	}
	for _, m := range r.Msgs {
		if m.SentAt >= out.Views[m.From].End {
			continue
		}
		nm := m
		if m.Received() && m.RecvAt >= out.Views[m.To].End {
			nm.RecvAt = model.Infinity
		}
		out.Msgs = append(out.Msgs, nm)
	}
	return out, nil
}
