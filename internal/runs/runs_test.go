package runs_test

import (
	"testing"
	"time"

	"timebounds/internal/model"
	"timebounds/internal/runs"
)

func params(n int) model.Params {
	return model.Params{
		N:       n,
		D:       10 * time.Millisecond,
		U:       4 * time.Millisecond,
		Epsilon: 3 * time.Millisecond,
	}
}

const ms = model.Time(time.Millisecond)

// twoProcRun builds the Fig. 4(a) example: two processes exchanging one
// message each with delay matrix entries dij, dji.
func twoProcRun(p model.Params, dij, dji model.Time) runs.Run {
	return runs.Run{
		Params: p,
		Views: []runs.TimedView{
			{Proc: 0, End: model.Infinity, Steps: []runs.Step{{RealTime: 0, Kind: "invoke"}, {RealTime: dji + 2*ms, Kind: "deliver"}}},
			{Proc: 1, End: model.Infinity, Steps: []runs.Step{{RealTime: 2 * ms, Kind: "invoke"}, {RealTime: dij, Kind: "deliver"}}},
		},
		Msgs: []runs.Message{
			{Seq: 0, From: 0, To: 1, SentAt: 0, RecvAt: dij},
			{Seq: 1, From: 1, To: 0, SentAt: 2 * ms, RecvAt: 2*ms + dji},
		},
	}
}

func TestAdmissibleAcceptsValidRun(t *testing.T) {
	p := params(2)
	r := twoProcRun(p, p.D-p.U/2, p.D-p.U/2)
	if err := runs.CheckRun(r); err != nil {
		t.Fatalf("CheckRun: %v", err)
	}
	if err := runs.Admissible(r); err != nil {
		t.Fatalf("Admissible: %v", err)
	}
}

func TestStandardShiftFig4a(t *testing.T) {
	// Fig. 4(a): d_{i,j} = d_{j,i} = d - u/2; shifting p_j by +u/2 gives
	// d'_{i,j} = d and d'_{j,i} = d - u — both still admissible.
	p := params(2)
	r := twoProcRun(p, p.D-p.U/2, p.D-p.U/2)
	shifted, err := runs.Shift(r, []model.Time{0, p.U / 2})
	if err != nil {
		t.Fatalf("Shift: %v", err)
	}
	// Claim B.3: still a run.
	if err := runs.CheckRun(shifted); err != nil {
		t.Fatalf("shifted run is not a run: %v", err)
	}
	if err := runs.Admissible(shifted); err != nil {
		t.Fatalf("Fig. 4(a) shift should stay admissible: %v", err)
	}
	if got := shifted.Msgs[0].Delay(); got != p.D {
		t.Errorf("d'_{i,j} = %s, want d = %s", got, p.D)
	}
	if got := shifted.Msgs[1].Delay(); got != p.D-p.U {
		t.Errorf("d'_{j,i} = %s, want d-u = %s", got, p.D-p.U)
	}
}

func TestModifiedShiftFig4bNeedsChop(t *testing.T) {
	// Fig. 4(b): d_{i,j} = d_{j,i} = d; shifting p_j by +u makes
	// d'_{i,j} = d + u inadmissible. Claim B.3: still a run; chop repairs
	// admissibility (Lemma B.1). The example needs ε ≥ u so the shifted
	// clocks stay within the skew bound.
	p := params(2)
	p.Epsilon = p.U
	r := twoProcRun(p, p.D, p.D)
	shifted, err := runs.Shift(r, []model.Time{0, p.U})
	if err != nil {
		t.Fatalf("Shift: %v", err)
	}
	if err := runs.CheckRun(shifted); err != nil {
		t.Fatalf("shifted run is not a run: %v", err)
	}
	if err := runs.Admissible(shifted); err == nil {
		t.Fatal("Fig. 4(b) shift should be inadmissible before chopping")
	}
	delays, err := runs.UniformDelays(shifted, p.D)
	if err != nil {
		t.Fatalf("UniformDelays: %v", err)
	}
	chopped, err := runs.Chop(shifted, delays, 0, 1, p.D-p.U)
	if err != nil {
		t.Fatalf("Chop: %v", err)
	}
	if err := runs.CheckRun(chopped); err != nil {
		t.Fatalf("chopped run is not a run: %v", err)
	}
	if err := runs.Admissible(chopped); err != nil {
		t.Fatalf("Lemma B.1 violated — chop not admissible: %v", err)
	}
}

func TestShiftPreservesClockTimes(t *testing.T) {
	// Claim B.1: shifting changes real times but each step keeps its clock
	// time (offset absorbs the shift).
	p := params(2)
	r := twoProcRun(p, p.D-p.U/2, p.D-p.U/2)
	x := []model.Time{3 * ms, -2 * ms}
	shifted, err := runs.Shift(r, x)
	if err != nil {
		t.Fatalf("Shift: %v", err)
	}
	for i, v := range r.Views {
		sv := shifted.Views[i]
		if len(sv.Steps) != len(v.Steps) {
			t.Fatalf("view %d step count changed", i)
		}
		for j := range v.Steps {
			before := v.ClockTime(v.Steps[j].RealTime)
			after := sv.ClockTime(sv.Steps[j].RealTime)
			if before != after {
				t.Errorf("view %d step %d clock time changed: %s → %s", i, j, before, after)
			}
			if sv.Steps[j].RealTime != v.Steps[j].RealTime+x[i] {
				t.Errorf("view %d step %d real time not shifted by %s", i, j, x[i])
			}
		}
	}
}

func TestShiftDelayFormula(t *testing.T) {
	// Formula (4.1): d'_{i,j} = d_{i,j} - x_i + x_j for all pairs.
	p := params(3)
	r := runs.Run{
		Params: p,
		Views: []runs.TimedView{
			{Proc: 0, End: model.Infinity},
			{Proc: 1, End: model.Infinity},
			{Proc: 2, End: model.Infinity},
		},
		Msgs: []runs.Message{
			{Seq: 0, From: 0, To: 1, SentAt: 0, RecvAt: p.D},
			{Seq: 1, From: 1, To: 2, SentAt: ms, RecvAt: ms + p.D - p.U},
			{Seq: 2, From: 2, To: 0, SentAt: 2 * ms, RecvAt: 2*ms + p.D - p.U/2},
		},
	}
	x := []model.Time{ms, -ms, 2 * ms}
	shifted, err := runs.Shift(r, x)
	if err != nil {
		t.Fatalf("Shift: %v", err)
	}
	for k, m := range r.Msgs {
		want := m.Delay() - x[m.From] + x[m.To]
		if got := shifted.Msgs[k].Delay(); got != want {
			t.Errorf("msg %d delay %s, want %s", k, got, want)
		}
	}
}

func TestChopCutsAtShortestPathDistances(t *testing.T) {
	// Three processes, uniform delays, one invalid i→j delay: V_j cut at
	// t* and V_k at t* + D_{j,k}.
	p := params(3)
	d := p.D
	delays := [][]model.Time{
		{0, d + 2*ms, d}, // 0→1 invalid (d+2ms)
		{d - p.U, 0, d},
		{d, d - p.U, 0},
	}
	r := runs.Run{
		Params: p,
		Views: []runs.TimedView{
			{Proc: 0, End: model.Infinity},
			{Proc: 1, End: model.Infinity},
			{Proc: 2, End: model.Infinity},
		},
		Msgs: []runs.Message{
			{Seq: 0, From: 0, To: 1, SentAt: 5 * ms, RecvAt: 5*ms + delays[0][1]},
			{Seq: 1, From: 1, To: 2, SentAt: 6 * ms, RecvAt: 6*ms + delays[1][2]},
		},
	}
	delta := d - p.U
	chopped, err := runs.Chop(r, delays, 0, 1, delta)
	if err != nil {
		t.Fatalf("Chop: %v", err)
	}
	tStar := 5*ms + delta // min(d+2ms, δ) = δ
	ends := runs.EndTimes(chopped)
	if ends[1] != tStar {
		t.Errorf("V_j end %s, want t* = %s", ends[1], tStar)
	}
	dist := runs.ShortestPaths(delays)
	for _, k := range []int{0, 2} {
		want := tStar + dist[1][k]
		if ends[k] != want {
			t.Errorf("V_%d end %s, want t*+D_{j,k} = %s", k, ends[k], want)
		}
	}
	if err := runs.Admissible(chopped); err != nil {
		t.Errorf("chopped run inadmissible: %v", err)
	}
}

func TestShortestPaths(t *testing.T) {
	d := [][]model.Time{
		{0, 10, 100},
		{10, 0, 10},
		{100, 10, 0},
	}
	dist := runs.ShortestPaths(d)
	if dist[0][2] != 20 {
		t.Errorf("dist[0][2] = %d, want 20 (via 1)", dist[0][2])
	}
	if dist[0][0] != 0 {
		t.Errorf("dist[0][0] = %d, want 0", dist[0][0])
	}
}

func TestUniformDelaysDetectsNonUniform(t *testing.T) {
	p := params(2)
	r := twoProcRun(p, p.D, p.D)
	r.Msgs = append(r.Msgs, runs.Message{Seq: 2, From: 0, To: 1, SentAt: 5 * ms, RecvAt: 5*ms + p.D - p.U})
	if _, err := runs.UniformDelays(r, p.D); err == nil {
		t.Error("expected non-uniform delay detection")
	}
}

func TestAdmissibleRejectsSkew(t *testing.T) {
	p := params(2)
	r := twoProcRun(p, p.D, p.D)
	r.Views[0].ClockOffset = 0
	r.Views[1].ClockOffset = p.Epsilon + 1
	if err := runs.Admissible(r); err == nil {
		t.Error("expected skew rejection")
	}
}

func TestAdmissibleRejectsLateUnreceived(t *testing.T) {
	// A message sent but not received while the recipient's view extends
	// beyond sendTime + d violates admissibility.
	p := params(2)
	r := twoProcRun(p, p.D, p.D)
	r.Msgs[0].RecvAt = model.Infinity
	if err := runs.Admissible(r); err == nil {
		t.Error("expected unreceived-message rejection for complete views")
	}
	// Cutting the recipient's view before sendTime + d excuses it.
	r.Views[1].End = r.Msgs[0].SentAt + p.D - 1
	r.Views[1].Steps = nil
	if err := runs.Admissible(r); err != nil {
		t.Errorf("cut view should excuse unreceived message: %v", err)
	}
}
