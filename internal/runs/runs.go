// Package runs makes the run-manipulation machinery of Chapters III–IV
// executable: timed views, runs, the standard time shift (§IV.A), and the
// modified time shift's chop operator (§IV.B, Lemma B.1). The lower-bound
// proofs reason by transforming runs; here those transformations are
// ordinary functions over recorded run data, and the accompanying tests
// check the paper's claims (B.1–B.4, Lemma B.1) mechanically.
package runs

import (
	"fmt"
	"sort"

	"timebounds/internal/model"
	"timebounds/internal/sim"
)

// Step is one process step, identified by its real time (its clock time is
// real time + the view's clock offset; Chapter III.B.2).
type Step struct {
	RealTime model.Time
	// Kind labels the step ("invoke", "deliver", "timer"); informational.
	Kind string
}

// TimedView is the timed view of one process: its steps in increasing real
// time, its constant clock offset c_j, and an exclusive end-of-view horizon
// (Infinity for complete views).
type TimedView struct {
	Proc        model.ProcessID
	ClockOffset model.Time
	Steps       []Step
	// End is the exclusive horizon: the view contains exactly the steps
	// with RealTime < End.
	End model.Time
}

// ClockTime returns the clock time of a step at the given real time.
func (v TimedView) ClockTime(real model.Time) model.Time { return real + v.ClockOffset }

// Message is one message of a run with its real send and receive times.
// RecvAt == model.Infinity marks a message sent but not received in the run.
type Message struct {
	Seq      int
	From, To model.ProcessID
	SentAt   model.Time
	RecvAt   model.Time
}

// Received reports whether the message is delivered within the run.
func (m Message) Received() bool { return m.RecvAt != model.Infinity }

// Delay returns the message delay (meaningless if not received).
func (m Message) Delay() model.Time { return m.RecvAt - m.SentAt }

// Run is a set of timed views, one per process, plus the messages exchanged
// (Chapter III.B.3).
type Run struct {
	Params model.Params
	Views  []TimedView
	Msgs   []Message
}

// FromSim extracts a Run from a completed simulation.
func FromSim(s *sim.Simulator) Run {
	p := s.Params()
	views := make([]TimedView, p.N)
	for i := range views {
		views[i] = TimedView{
			Proc:        model.ProcessID(i),
			ClockOffset: s.ClockOffset(model.ProcessID(i)),
			End:         model.Infinity,
		}
	}
	for _, st := range s.Steps() {
		views[st.Proc].Steps = append(views[st.Proc].Steps, Step{
			RealTime: st.RealTime,
			Kind:     st.Kind,
		})
	}
	msgs := make([]Message, 0, len(s.Messages()))
	for _, m := range s.Messages() {
		msgs = append(msgs, Message{
			Seq: m.Seq, From: m.From, To: m.To, SentAt: m.SentAt, RecvAt: m.RecvAt,
		})
	}
	return Run{Params: p, Views: views, Msgs: msgs}
}

// CheckView verifies the timed-view well-formedness conditions of Chapter
// III.B.2 that are observable here: steps strictly ordered in real time and
// contained in [0, End).
func CheckView(v TimedView) error {
	var last model.Time = -1
	for _, st := range v.Steps {
		if st.RealTime <= last && last >= 0 {
			// Steps share real times only via distinct events in the sim;
			// allow equal times but not decreasing.
			if st.RealTime < last {
				return fmt.Errorf("runs: %s steps not ordered: %s after %s", v.Proc, st.RealTime, last)
			}
		}
		if st.RealTime >= v.End {
			return fmt.Errorf("runs: %s step at %s beyond view end %s", v.Proc, st.RealTime, v.End)
		}
		last = st.RealTime
	}
	return nil
}

// CheckRun verifies that r is a run: per-view well-formedness and every
// received message sent within its sender's view and received within its
// recipient's view.
func CheckRun(r Run) error {
	for _, v := range r.Views {
		if err := CheckView(v); err != nil {
			return err
		}
	}
	for _, m := range r.Msgs {
		if m.SentAt >= r.Views[m.From].End {
			return fmt.Errorf("runs: msg %d sent at %s after sender view end %s",
				m.Seq, m.SentAt, r.Views[m.From].End)
		}
		if m.Received() && m.RecvAt >= r.Views[m.To].End {
			return fmt.Errorf("runs: msg %d received at %s after recipient view end %s",
				m.Seq, m.RecvAt, r.Views[m.To].End)
		}
		if m.Received() && m.RecvAt < m.SentAt {
			return fmt.Errorf("runs: msg %d received before sent", m.Seq)
		}
	}
	return nil
}

// Admissible verifies the admissibility conditions of Chapter III.B.3:
// received delays within [d-u, d]; unreceived messages excused only when the
// recipient's view ends before sendTime+d; pairwise clock skew ≤ ε.
func Admissible(r Run) error {
	p := r.Params
	for _, m := range r.Msgs {
		if m.Received() {
			d := m.Delay()
			if d < p.MinDelay() || d > p.D {
				return fmt.Errorf("runs: msg %d delay %s outside [%s, %s]",
					m.Seq, d, p.MinDelay(), p.D)
			}
			continue
		}
		if end := r.Views[m.To].End; end > m.SentAt+p.D {
			return fmt.Errorf("runs: msg %d unreceived but recipient view extends to %s > %s",
				m.Seq, end, m.SentAt+p.D)
		}
	}
	for i := range r.Views {
		for j := range r.Views {
			skew := r.Views[i].ClockOffset - r.Views[j].ClockOffset
			if skew < 0 {
				skew = -skew
			}
			if skew > p.Epsilon {
				return fmt.Errorf("runs: clock skew |c%d-c%d| = %s exceeds ε=%s", i, j, skew, p.Epsilon)
			}
		}
	}
	return nil
}

// ShiftView implements shift(V, x) (Chapter III.B.2): each step's real time
// increases by x while its clock time is preserved, so the clock offset
// decreases by x. Claim B.1: the result is again a timed view.
func ShiftView(v TimedView, x model.Time) TimedView {
	out := TimedView{
		Proc:        v.Proc,
		ClockOffset: v.ClockOffset - x,
		Steps:       make([]Step, len(v.Steps)),
		End:         shiftHorizon(v.End, x),
	}
	for i, st := range v.Steps {
		out.Steps[i] = Step{RealTime: st.RealTime + x, Kind: st.Kind}
	}
	return out
}

func shiftHorizon(end model.Time, x model.Time) model.Time {
	if end == model.Infinity {
		return model.Infinity
	}
	return end + x
}

// Shift implements shift(R, ~x) (Chapter III.B.3): view i is shifted by
// x[i]; a message from i to j keeps its clock-observable content but its
// delay changes to delay - x[i] + x[j] (formula 4.1 with clock_shift =
// -x). Claim B.3: the result is a run, but not necessarily admissible.
func Shift(r Run, x []model.Time) (Run, error) {
	if len(x) != len(r.Views) {
		return Run{}, fmt.Errorf("runs: %d shift amounts for %d views", len(x), len(r.Views))
	}
	out := Run{Params: r.Params, Views: make([]TimedView, len(r.Views)), Msgs: make([]Message, len(r.Msgs))}
	for i, v := range r.Views {
		out.Views[i] = ShiftView(v, x[i])
	}
	for i, m := range r.Msgs {
		nm := m
		nm.SentAt = m.SentAt + x[m.From]
		if m.Received() {
			nm.RecvAt = m.RecvAt + x[m.To]
		}
		out.Msgs[i] = nm
	}
	return out, nil
}

// UniformDelays extracts the pairwise-uniform delay matrix of a run, or an
// error if two messages between the same ordered pair have different
// delays. def fills pairs with no message traffic.
func UniformDelays(r Run, def model.Time) ([][]model.Time, error) {
	n := len(r.Views)
	m := make([][]model.Time, n)
	seen := make([][]bool, n)
	for i := range m {
		m[i] = make([]model.Time, n)
		seen[i] = make([]bool, n)
		for j := range m[i] {
			m[i][j] = def
		}
	}
	for _, msg := range r.Msgs {
		if !msg.Received() {
			continue
		}
		d := msg.Delay()
		if seen[msg.From][msg.To] && m[msg.From][msg.To] != d {
			return nil, fmt.Errorf("runs: non-uniform delays %s and %s from %s to %s",
				m[msg.From][msg.To], d, msg.From, msg.To)
		}
		m[msg.From][msg.To] = d
		seen[msg.From][msg.To] = true
	}
	return m, nil
}

// ShortestPaths runs Floyd–Warshall over the complete directed graph whose
// edge (i, j) weighs delays[i][j] (Chapter IV.B.1's D_{j,k}).
func ShortestPaths(delays [][]model.Time) [][]model.Time {
	n := len(delays)
	dist := make([][]model.Time, n)
	for i := range dist {
		dist[i] = make([]model.Time, n)
		copy(dist[i], delays[i])
		dist[i][i] = 0
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if via := dist[i][k] + dist[k][j]; via < dist[i][j] {
					dist[i][j] = via
				}
			}
		}
	}
	return dist
}

// Chop implements chop(R, δ) from Lemma B.1 for a run with pairwise-uniform
// delays in which exactly the (from → to) delay is invalid. Let m be the
// first message from `from` to `to`, sent at t_s; then t* = t_s +
// min(d_{from,to}, δ), the recipient's view is cut just before t*, and
// every other view k is cut just before t* + D_{to,k} (shortest-path
// distance over the delay graph). Messages received beyond a cut become
// unreceived; messages sent beyond their sender's cut are dropped.
func Chop(r Run, delays [][]model.Time, from, to model.ProcessID, delta model.Time) (Run, error) {
	p := r.Params
	if delta < p.MinDelay() || delta > p.D {
		return Run{}, fmt.Errorf("runs: δ=%s outside [%s, %s]", delta, p.MinDelay(), p.D)
	}
	// Locate the first message from → to.
	var first *Message
	for i := range r.Msgs {
		m := &r.Msgs[i]
		if m.From == from && m.To == to {
			if first == nil || m.SentAt < first.SentAt {
				first = m
			}
		}
	}
	if first == nil {
		return Run{}, fmt.Errorf("runs: no message from %s to %s", from, to)
	}
	dInv := delays[from][to]
	tStar := first.SentAt + minTime(dInv, delta)
	dist := ShortestPaths(delays)

	cut := make([]model.Time, len(r.Views))
	for k := range r.Views {
		if model.ProcessID(k) == to {
			cut[k] = tStar
			continue
		}
		cut[k] = tStar + dist[to][k]
	}
	out := Run{Params: p, Views: make([]TimedView, len(r.Views))}
	for k, v := range r.Views {
		nv := TimedView{Proc: v.Proc, ClockOffset: v.ClockOffset, End: minTime(v.End, cut[k])}
		for _, st := range v.Steps {
			if st.RealTime < nv.End {
				nv.Steps = append(nv.Steps, st)
			}
		}
		out.Views[k] = nv
	}
	for _, m := range r.Msgs {
		if m.SentAt >= out.Views[m.From].End {
			continue // sent beyond the prefix: drop entirely
		}
		nm := m
		if m.Received() && m.RecvAt >= out.Views[m.To].End {
			nm.RecvAt = model.Infinity
		}
		out.Msgs = append(out.Msgs, nm)
	}
	return out, nil
}

func minTime(a, b model.Time) model.Time {
	if a < b {
		return a
	}
	return b
}

// EndTimes returns each view's End, for assertions about where chops cut.
func EndTimes(r Run) []model.Time {
	out := make([]model.Time, len(r.Views))
	for i, v := range r.Views {
		out[i] = v.End
	}
	return out
}

// SortMessages orders messages by (SentAt, Seq) in place and returns them.
func SortMessages(ms []Message) []Message {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].SentAt != ms[j].SentAt {
			return ms[i].SentAt < ms[j].SentAt
		}
		return ms[i].Seq < ms[j].Seq
	})
	return ms
}
