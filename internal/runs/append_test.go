package runs_test

import (
	"testing"
	"time"

	"timebounds/internal/core"
	"timebounds/internal/model"
	"timebounds/internal/runs"
	"timebounds/internal/sim"
	"timebounds/internal/types"
)

func TestAppendRuns(t *testing.T) {
	p := params(2)
	r1 := twoProcRun(p, p.D, p.D)
	r1.Views[0].End = 40 * ms
	r1.Views[1].End = 40 * ms

	r2 := runs.Run{
		Params: p,
		Views: []runs.TimedView{
			{Proc: 0, End: model.Infinity, Steps: []runs.Step{{RealTime: 50 * ms, Kind: "invoke"}}},
			{Proc: 1, End: model.Infinity, Steps: []runs.Step{{RealTime: 50*ms + p.D, Kind: "deliver"}}},
		},
		Msgs: []runs.Message{{Seq: 0, From: 0, To: 1, SentAt: 50 * ms, RecvAt: 50*ms + p.D}},
	}
	joined, err := runs.Append(r1, r2)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	// Claim B.4: the result is a run.
	if err := runs.CheckRun(joined); err != nil {
		t.Fatalf("appended result is not a run: %v", err)
	}
	if got := len(joined.Msgs); got != len(r1.Msgs)+len(r2.Msgs) {
		t.Errorf("message count %d", got)
	}
	if got := len(joined.Views[0].Steps); got != len(r1.Views[0].Steps)+1 {
		t.Errorf("p0 step count %d", got)
	}
}

func TestAppendableRejections(t *testing.T) {
	p := params(2)
	infinite := twoProcRun(p, p.D, p.D) // views end at Infinity
	r2 := runs.Run{Params: p, Views: []runs.TimedView{
		{Proc: 0, End: model.Infinity}, {Proc: 1, End: model.Infinity},
	}}
	if err := runs.Appendable(infinite, r2); err == nil {
		t.Error("appending to an infinite run should fail")
	}

	finite := twoProcRun(p, p.D, p.D)
	finite.Views[0].End = 40 * ms
	finite.Views[1].End = 40 * ms
	badClock := r2
	badClock.Views = []runs.TimedView{
		{Proc: 0, End: model.Infinity, ClockOffset: time.Millisecond},
		{Proc: 1, End: model.Infinity},
	}
	if err := runs.Appendable(finite, badClock); err == nil {
		t.Error("differing clock functions should fail (appendable requires same clocks)")
	}

	early := runs.Run{Params: p, Views: []runs.TimedView{
		{Proc: 0, End: model.Infinity, Steps: []runs.Step{{RealTime: 0, Kind: "invoke"}}},
		{Proc: 1, End: model.Infinity},
	}}
	if err := runs.Appendable(finite, early); err == nil {
		t.Error("r2 step before r1's last step should fail")
	}
}

func TestTruncateThenAppendRoundTrip(t *testing.T) {
	// Truncating a run and appending the remainder-shaped suffix
	// reconstructs a well-formed run.
	p := params(2)
	r := twoProcRun(p, p.D-p.U/2, p.D-p.U/2)
	prefix, err := runs.Truncate(r, []model.Time{5 * ms})
	if err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if err := runs.CheckRun(prefix); err != nil {
		t.Fatalf("prefix is not a run: %v", err)
	}
	for _, v := range prefix.Views {
		if v.End != 5*ms {
			t.Errorf("%s end %s, want 5ms", v.Proc, v.End)
		}
		for _, st := range v.Steps {
			if st.RealTime >= 5*ms {
				t.Errorf("step at %s survived truncation", st.RealTime)
			}
		}
	}
	// A message sent inside but received outside the horizon becomes
	// unreceived.
	for _, m := range prefix.Msgs {
		if m.Received() && m.RecvAt >= 5*ms {
			t.Errorf("message %d still received at %s", m.Seq, m.RecvAt)
		}
	}
}

func TestFromSimRoundTrip(t *testing.T) {
	// Runs extracted from real simulations satisfy CheckRun and
	// Admissible, and carry the simulator's offsets.
	p := params(3)
	p.Epsilon = 3 * time.Millisecond
	offsets := []model.Time{0, -time.Millisecond, time.Millisecond}
	cluster, err := core.NewCluster(core.Config{Params: p}, types.NewQueue(), sim.Config{
		ClockOffsets: offsets,
		Delay:        sim.NewRandomDelay(21, p.MinDelay(), p.D),
		StrictDelays: true,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	cluster.Invoke(0, 0, types.OpEnqueue, 1)
	cluster.Invoke(p.D, 1, types.OpEnqueue, 2)
	cluster.Invoke(4*p.D, 2, types.OpDequeue, nil)
	if err := cluster.Run(model.Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	r := runs.FromSim(cluster.Simulator())
	if err := runs.CheckRun(r); err != nil {
		t.Fatalf("CheckRun: %v", err)
	}
	if err := runs.Admissible(r); err != nil {
		t.Fatalf("Admissible: %v", err)
	}
	for i, v := range r.Views {
		if v.ClockOffset != offsets[i] {
			t.Errorf("view %d offset %s, want %s", i, v.ClockOffset, offsets[i])
		}
		if len(v.Steps) == 0 {
			t.Errorf("view %d has no steps", i)
		}
	}
	if len(r.Msgs) == 0 {
		t.Error("no messages recorded")
	}
}
