// Package baseline provides the two "folklore" linearizable implementations
// the paper compares against (Chapter I.A.3):
//
//   - Centralized: one coordinator process holds the object; every operation
//     is a request/response round trip, so the worst case is 2d.
//   - AllOOP: Algorithm 1 with every operation forced onto the totally
//     ordered OOP path (equivalent to a timestamp-based total order
//     broadcast), so every operation takes up to d+ε.
//
// Both are correct; they exist so the benchmarks can show where Algorithm
// 1's class-specific fast paths win.
package baseline

import (
	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
)

// request is the client→coordinator message of the centralized scheme.
type request struct {
	ID   history.OpID
	Kind spec.OpKind
	Arg  spec.Value
}

// response is the coordinator→client reply.
type response struct {
	ID  history.OpID
	Ret spec.Value
}

// Centralized is one process of the centralized implementation. The process
// with id Coordinator owns the object; all others forward their operations
// to it.
type Centralized struct {
	// Coordinator is the object owner's process id.
	Coordinator model.ProcessID
	dt          spec.DataType
	state       spec.State
}

var _ sim.Process = (*Centralized)(nil)

// NewCentralized builds one process of the centralized scheme. Only the
// coordinator's state is ever used.
func NewCentralized(coordinator model.ProcessID, dt spec.DataType) *Centralized {
	return &Centralized{Coordinator: coordinator, dt: dt, state: dt.InitialState()}
}

// OnInvoke implements sim.Process.
func (c *Centralized) OnInvoke(env sim.Env, id history.OpID, kind spec.OpKind, arg spec.Value) {
	if env.Self() == c.Coordinator {
		next, ret := c.dt.Apply(c.state, kind, arg)
		c.state = next
		env.Respond(id, ret)
		return
	}
	env.Send(c.Coordinator, request{ID: id, Kind: kind, Arg: arg})
}

// OnMessage implements sim.Process.
func (c *Centralized) OnMessage(env sim.Env, from model.ProcessID, payload any) {
	switch m := payload.(type) {
	case request:
		next, ret := c.dt.Apply(c.state, m.Kind, m.Arg)
		c.state = next
		env.Send(from, response{ID: m.ID, Ret: ret})
	case response:
		env.Respond(m.ID, m.Ret)
	}
}

// OnTimer implements sim.Process; the centralized scheme uses no timers.
func (c *Centralized) OnTimer(sim.Env, any) {}

// StateEncoding returns the coordinator's object encoding (diagnostics).
func (c *Centralized) StateEncoding() string { return c.dt.EncodeState(c.state) }

// AllOOP wraps a data type so that every operation kind is classified as
// OOP. Running core.Replica over an AllOOP-wrapped type yields the folklore
// total-order-broadcast implementation: all operations respond in ≤ d+ε.
type AllOOP struct {
	// Inner is the wrapped data type.
	Inner spec.DataType
}

var _ spec.DataType = AllOOP{}

// Name implements spec.DataType.
func (a AllOOP) Name() string { return a.Inner.Name() + "-all-oop" }

// InitialState implements spec.DataType.
func (a AllOOP) InitialState() spec.State { return a.Inner.InitialState() }

// Apply implements spec.DataType.
func (a AllOOP) Apply(s spec.State, kind spec.OpKind, arg spec.Value) (spec.State, spec.Value) {
	return a.Inner.Apply(s, kind, arg)
}

// Kinds implements spec.DataType.
func (a AllOOP) Kinds() []spec.OpKind { return a.Inner.Kinds() }

// Class implements spec.DataType: everything is OOP.
func (a AllOOP) Class(spec.OpKind) spec.OpClass { return spec.ClassOther }

// EncodeState implements spec.DataType.
func (a AllOOP) EncodeState(s spec.State) string { return a.Inner.EncodeState(s) }
