package baseline_test

import (
	"testing"
	"time"

	"timebounds/internal/baseline"
	"timebounds/internal/check"
	"timebounds/internal/core"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
	"timebounds/internal/types"
)

func params(n int) model.Params {
	p := model.Params{N: n, D: 10 * time.Millisecond, U: 4 * time.Millisecond}
	p.Epsilon = p.OptimalSkew()
	return p
}

func newCentralizedSim(t *testing.T, p model.Params, dt spec.DataType) *sim.Simulator {
	t.Helper()
	procs := make([]sim.Process, p.N)
	for i := range procs {
		procs[i] = baseline.NewCentralized(0, dt)
	}
	s, err := sim.New(sim.Config{Params: p, Delay: sim.FixedDelay(p.D), StrictDelays: true}, procs)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	return s
}

func TestCentralizedLinearizable(t *testing.T) {
	p := params(3)
	dt := types.NewRMWRegister(0)
	s := newCentralizedSim(t, p, dt)
	s.Invoke(0, 1, types.OpWrite, 5)
	s.Invoke(p.D/2, 2, types.OpRMW, 9)
	s.Invoke(4*p.D, 1, types.OpRead, nil)
	if err := s.Run(model.Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !s.History().Complete() {
		t.Fatalf("pending ops:\n%s", s.History())
	}
	if res := check.Check(dt, s.History()); !res.Linearizable {
		t.Fatalf("centralized history not linearizable:\n%s", s.History())
	}
}

func TestCentralizedWorstCaseIs2D(t *testing.T) {
	p := params(3)
	dt := types.NewRegister(0)
	s := newCentralizedSim(t, p, dt)
	s.Invoke(0, 1, types.OpWrite, 1) // non-coordinator: round trip 2d
	s.Invoke(0, 0, types.OpRead, nil)
	if err := s.Run(model.Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, op := range s.History().Ops() {
		var want model.Time
		if op.Proc != 0 {
			want = 2 * p.D
		}
		if op.Latency() != want {
			t.Errorf("%s latency %s, want %s", op, op.Latency(), want)
		}
	}
}

func TestCentralizedCoordinatorIsLocal(t *testing.T) {
	p := params(3)
	dt := types.NewQueue()
	s := newCentralizedSim(t, p, dt)
	s.Invoke(0, 0, types.OpEnqueue, "x")
	s.Invoke(1, 0, types.OpDequeue, nil)
	if err := s.Run(model.Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ops := s.History().Ops()
	if len(ops) != 2 {
		t.Fatalf("want 2 ops, got %d", len(ops))
	}
	if !spec.ValueEqual(ops[1].Ret, "x") {
		t.Errorf("dequeue returned %v, want x", ops[1].Ret)
	}
}

func TestAllOOPForcesSlowPathEverywhere(t *testing.T) {
	p := params(3)
	wrapped := baseline.AllOOP{Inner: types.NewRegister(0)}
	for _, k := range wrapped.Kinds() {
		if wrapped.Class(k) != spec.ClassOther {
			t.Errorf("kind %s class %v, want OOP", k, wrapped.Class(k))
		}
	}
	cluster, err := core.NewCluster(core.Config{Params: p}, wrapped, sim.Config{
		Delay:        sim.FixedDelay(p.D),
		StrictDelays: true,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	cluster.Invoke(0, 0, types.OpWrite, 3)
	cluster.Invoke(4*p.D, 1, types.OpRead, nil)
	if err := cluster.Run(model.Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// With zero skew, the write executes locally at (d-u)+(u+ε)=d+ε.
	if got, _ := cluster.History().MaxLatency(types.OpWrite); got != p.D+p.Epsilon {
		t.Errorf("all-OOP write latency %s, want d+ε = %s", got, p.D+p.Epsilon)
	}
	if res := check.Check(wrapped, cluster.History()); !res.Linearizable {
		t.Errorf("all-OOP history not linearizable:\n%s", cluster.History())
	}
	var read spec.Value
	for _, op := range cluster.History().Ops() {
		if op.Kind == types.OpRead {
			read = op.Ret
		}
	}
	if !spec.ValueEqual(read, 3) {
		t.Errorf("read returned %v, want 3", read)
	}
}

func TestAllOOPDelegates(t *testing.T) {
	inner := types.NewQueue()
	w := baseline.AllOOP{Inner: inner}
	if w.Name() != "queue-all-oop" {
		t.Errorf("Name = %s", w.Name())
	}
	s, ret := w.Apply(w.InitialState(), types.OpEnqueue, 1)
	if ret != nil {
		t.Errorf("enqueue ret %v", ret)
	}
	if w.EncodeState(s) != inner.EncodeState(s) {
		t.Error("EncodeState not delegated")
	}
	if len(w.Kinds()) != len(inner.Kinds()) {
		t.Error("Kinds not delegated")
	}
}
