package tob_test

import (
	"testing"
	"time"

	"timebounds/internal/check"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
	"timebounds/internal/tob"
	"timebounds/internal/types"
)

func params(n int) model.Params {
	p := model.Params{N: n, D: 10 * time.Millisecond, U: 4 * time.Millisecond}
	p.Epsilon = p.OptimalSkew()
	return p
}

func newTOBSim(t *testing.T, p model.Params, dt spec.DataType, delay sim.DelayPolicy) (*sim.Simulator, []*tob.Object) {
	t.Helper()
	objs := make([]*tob.Object, p.N)
	procs := make([]sim.Process, p.N)
	for i := range procs {
		objs[i] = tob.NewObject(model.ProcessID(i), 0, dt)
		procs[i] = objs[i]
	}
	s, err := sim.New(sim.Config{Params: p, Delay: delay, StrictDelays: true}, procs)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	return s, objs
}

func TestTOBLinearizable(t *testing.T) {
	p := params(3)
	dt := types.NewRMWRegister(0)
	s, objs := newTOBSim(t, p, dt, sim.NewRandomDelay(11, p.MinDelay(), p.D))
	s.Invoke(0, 1, types.OpWrite, 5)
	s.Invoke(0, 2, types.OpRMW, 9)
	s.Invoke(p.D/3, 0, types.OpRead, nil)
	s.Invoke(5*p.D, 2, types.OpRead, nil)
	if err := s.Run(model.Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !s.History().Complete() {
		t.Fatalf("pending operations:\n%s", s.History())
	}
	if res := check.Check(dt, s.History()); !res.Linearizable {
		t.Fatalf("TOB history not linearizable:\n%s", s.History())
	}
	for i := 1; i < len(objs); i++ {
		if objs[i].StateEncoding() != objs[0].StateEncoding() {
			t.Errorf("replica %d diverged: %s vs %s", i, objs[i].StateEncoding(), objs[0].StateEncoding())
		}
	}
}

func TestTOBDeliveryOrderIdenticalEverywhere(t *testing.T) {
	// Queue contents after concurrent enqueues must agree across replicas
	// even with adversarial delays reordering the rebroadcasts.
	p := params(4)
	dt := types.NewQueue()
	s, objs := newTOBSim(t, p, dt, sim.ExtremalDelay{Params: p})
	for i := 0; i < 8; i++ {
		s.Invoke(model.Time(i)*p.D/4, model.ProcessID(i%4), types.OpEnqueue, i)
	}
	if err := s.Run(model.Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 1; i < len(objs); i++ {
		if objs[i].StateEncoding() != objs[0].StateEncoding() {
			t.Fatalf("replica %d diverged: %s vs %s", i, objs[i].StateEncoding(), objs[0].StateEncoding())
		}
	}
}

func TestTOBWorstCaseMatchesCentralized(t *testing.T) {
	// Chapter I's observation: TOB-over-point-to-point is not faster than
	// the centralized scheme. A non-sequencer operation costs exactly 2d
	// under slowest delays; the sequencer's own costs d.
	p := params(3)
	dt := types.NewRegister(0)
	s, _ := newTOBSim(t, p, dt, sim.FixedDelay(p.D))
	s.Invoke(0, 1, types.OpWrite, 1) // non-sequencer: forward d + rebroadcast d
	s.Invoke(0, 0, types.OpWrite, 2) // sequencer: own rebroadcast delivers locally at once
	if err := s.Run(model.Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, op := range s.History().Ops() {
		var want model.Time
		if op.Proc == 1 {
			want = 2 * p.D
		}
		if op.Latency() != want {
			t.Errorf("%s: latency %s, want %s", op, op.Latency(), want)
		}
	}
}

func TestTOBGapBuffering(t *testing.T) {
	// A stamped message arriving before its predecessor must be buffered:
	// sequencer's rebroadcast of seq 1 can overtake seq 0 under extremal
	// delays; order must still hold. We detect misordering via FIFO
	// semantics: a dequeue after both enqueues settles must return the
	// first-sequenced element.
	p := params(3)
	dt := types.NewQueue()
	s, _ := newTOBSim(t, p, dt, sim.FuncDelay(func(from, to model.ProcessID, _ model.Time, seq int) model.Time {
		// Alternate extremes so consecutive rebroadcasts reorder in flight.
		if seq%2 == 0 {
			return p.D
		}
		return p.MinDelay()
	}))
	s.Invoke(0, 0, types.OpEnqueue, "first")
	s.Invoke(1, 0, types.OpEnqueue, "second")
	s.Invoke(8*p.D, 1, types.OpDequeue, nil)
	if err := s.Run(model.Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, op := range s.History().Ops() {
		if op.Kind == types.OpDequeue && !spec.ValueEqual(op.Ret, "first") {
			t.Errorf("dequeue returned %v, want \"first\"", op.Ret)
		}
	}
	if res := check.Check(dt, s.History()); !res.Linearizable {
		t.Fatalf("not linearizable:\n%s", s.History())
	}
}
