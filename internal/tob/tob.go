// Package tob implements a sequencer-based total-order broadcast and a
// linearizable shared object on top of it. Chapter I.A.3 mentions this as
// the second folklore route to linearizability and observes that it "is not
// faster than the centralized scheme once the cost of implementing totally
// ordered broadcast over point-to-point messages is taken into account" —
// this package makes that observation measurable: a non-sequencer
// operation costs up to 2d (one hop to the sequencer, one ordered hop out),
// exactly like the centralized baseline and well above Algorithm 1.
//
// Protocol: process Sequencer assigns consecutive sequence numbers.
// A sender forwards its message to the sequencer; the sequencer stamps and
// rebroadcasts it (delivering locally in the same step); every process
// delivers stamped messages strictly in sequence-number order, buffering
// out-of-order arrivals.
package tob

import (
	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
)

// forward carries an unordered payload from a sender to the sequencer.
type forward struct {
	Origin model.ProcessID
	Body   any
}

// stamped carries a payload with its global sequence number.
type stamped struct {
	Seq    int
	Origin model.ProcessID
	Body   any
}

// Deliverer receives totally ordered deliveries.
type Deliverer interface {
	// Deliver is called exactly once per broadcast, in the same (sequence)
	// order at every process.
	Deliver(env sim.Env, seq int, origin model.ProcessID, body any)
}

// Broadcaster is the total-order broadcast endpoint of one process. Embed
// it in a sim.Process and route OnMessage payloads through HandleMessage.
type Broadcaster struct {
	// Self is this process's id.
	Self model.ProcessID
	// Sequencer is the id of the sequencing process.
	Sequencer model.ProcessID
	// Target receives ordered deliveries.
	Target Deliverer

	nextSeq   int // sequencer only: next sequence number to assign
	nextDeliv int // next sequence number to deliver locally
	// pending[head:] buffers out-of-order stamped messages sorted by Seq.
	// The head index (instead of reslicing the front off) keeps the
	// buffer's capacity, so the steady state of enqueue→drain reuses one
	// backing array instead of reallocating per message.
	pending []stamped
	head    int
}

// Broadcast submits a payload for total ordering.
func (b *Broadcaster) Broadcast(env sim.Env, body any) {
	if b.Self == b.Sequencer {
		b.stampAndSend(env, b.Self, body)
		return
	}
	env.Send(b.Sequencer, forward{Origin: b.Self, Body: body})
}

// stampAndSend runs at the sequencer: assign the next number, rebroadcast,
// and deliver locally.
func (b *Broadcaster) stampAndSend(env sim.Env, origin model.ProcessID, body any) {
	msg := stamped{Seq: b.nextSeq, Origin: origin, Body: body}
	b.nextSeq++
	env.Broadcast(msg)
	b.enqueue(env, msg)
}

// HandleMessage routes a network payload through the broadcast layer. It
// returns false if the payload was not a TOB message (callers may then
// interpret it themselves).
func (b *Broadcaster) HandleMessage(env sim.Env, payload any) bool {
	switch m := payload.(type) {
	case forward:
		if b.Self != b.Sequencer {
			return false
		}
		b.stampAndSend(env, m.Origin, m.Body)
		return true
	case stamped:
		b.enqueue(env, m)
		return true
	default:
		return false
	}
}

// enqueue buffers a stamped message and delivers every consecutive message
// starting at nextDeliv, in order. Insertion keeps pending[head:] sorted
// by sequence number (messages arrive nearly in order, so the shift is
// short), and a drained buffer is rewound to reuse its capacity.
//
//tb:hotpath
func (b *Broadcaster) enqueue(env sim.Env, m stamped) {
	// Binary-search the insertion point in the sorted tail.
	lo, hi := b.head, len(b.pending)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.pending[mid].Seq < m.Seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b.pending = append(b.pending, stamped{})
	copy(b.pending[lo+1:], b.pending[lo:len(b.pending)-1])
	b.pending[lo] = m
	for b.head < len(b.pending) && b.pending[b.head].Seq == b.nextDeliv {
		next := b.pending[b.head]
		b.pending[b.head] = stamped{} // drop the Body reference
		b.head++
		b.nextDeliv++
		if b.head == len(b.pending) {
			b.pending = b.pending[:0]
			b.head = 0
		}
		b.Target.Deliver(env, next.Seq, next.Origin, next.Body)
	}
}

// opBody is the payload of an object operation routed over TOB.
type opBody struct {
	ID   history.OpID
	Kind spec.OpKind
	Arg  spec.Value
}

// Object is a linearizable shared object built directly on total-order
// broadcast: every operation (regardless of class) is broadcast, applied
// in delivery order on every copy, and answered by its origin when the
// origin delivers it. It implements sim.Process.
type Object struct {
	bcast *Broadcaster
	dt    spec.DataType
	state spec.State
}

var _ sim.Process = (*Object)(nil)
var _ Deliverer = (*Object)(nil)

// NewObject builds the process with the given id; sequencer is the
// ordering process shared by the whole cluster.
func NewObject(self, sequencer model.ProcessID, dt spec.DataType) *Object {
	o := &Object{dt: dt, state: dt.InitialState()}
	o.bcast = &Broadcaster{Self: self, Sequencer: sequencer, Target: o}
	return o
}

// OnInvoke implements sim.Process.
func (o *Object) OnInvoke(env sim.Env, id history.OpID, kind spec.OpKind, arg spec.Value) {
	o.bcast.Broadcast(env, opBody{ID: id, Kind: kind, Arg: arg})
}

// OnMessage implements sim.Process.
func (o *Object) OnMessage(env sim.Env, _ model.ProcessID, payload any) {
	o.bcast.HandleMessage(env, payload)
}

// OnTimer implements sim.Process; the TOB object uses no timers.
func (o *Object) OnTimer(sim.Env, any) {}

// Deliver implements Deliverer: apply in order; the origin responds.
func (o *Object) Deliver(env sim.Env, _ int, origin model.ProcessID, body any) {
	op, ok := body.(opBody)
	if !ok {
		return
	}
	next, ret := o.dt.Apply(o.state, op.Kind, op.Arg)
	o.state = next
	if origin == env.Self() {
		env.Respond(op.ID, ret)
	}
}

// StateEncoding returns the canonical encoding of the local copy.
func (o *Object) StateEncoding() string { return o.dt.EncodeState(o.state) }
