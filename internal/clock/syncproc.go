package clock

import (
	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
)

// reading carries the sender's clock value at send time.
type reading struct {
	Clock model.Time
}

// startSync is the timer payload that kicks off a process's broadcast.
type startSync struct{}

// SyncProcess runs one Lundelius–Lynch synchronization round inside the
// simulator, message by message: at a configured local clock time each
// process broadcasts its clock reading; on receipt the receiver estimates
// the sender's offset difference under the midpoint assumption
// (delay ≈ d - u/2); after hearing from everyone it adjusts its logical
// clock by the average estimate. The adjusted clocks are then within
// (1-1/n)·u of each other regardless of the adversary's delay choices —
// the ε Chapter V assumes.
//
// It implements sim.Process. Drive it by invoking the "sync" operation on
// every process at time zero; the operation responds with the process's
// computed adjustment.
type SyncProcess struct {
	params model.Params
	// StartClock is the local clock time at which this process broadcasts.
	startClock model.Time

	pendingOp  history.OpID
	hasPending bool
	estimates  []model.Time
	adjusted   bool
	adjustment model.Time
}

var _ sim.Process = (*SyncProcess)(nil)

// OpSync triggers the synchronization round on a process; it responds with
// the clock adjustment (a duration) once the round completes.
const OpSync spec.OpKind = "sync"

// NewSyncProcess builds one synchronization process. All processes should
// share the same startClock so broadcasts happen at a common logical time.
func NewSyncProcess(p model.Params, startClock model.Time) *SyncProcess {
	return &SyncProcess{params: p, startClock: startClock}
}

// Adjustment returns the computed clock adjustment and whether the round
// completed.
func (s *SyncProcess) Adjustment() (model.Time, bool) { return s.adjustment, s.adjusted }

// OnInvoke implements sim.Process.
func (s *SyncProcess) OnInvoke(env sim.Env, id history.OpID, kind spec.OpKind, _ spec.Value) {
	if kind != OpSync || s.hasPending {
		env.Respond(id, nil)
		return
	}
	s.pendingOp = id
	s.hasPending = true
	wait := s.startClock - env.ClockTime()
	if wait < 0 {
		wait = 0
	}
	env.SetTimerAfter(wait, startSync{})
	s.maybeFinish(env)
}

// OnTimer implements sim.Process.
func (s *SyncProcess) OnTimer(env sim.Env, payload any) {
	if _, ok := payload.(startSync); !ok {
		return
	}
	env.Broadcast(reading{Clock: env.ClockTime()})
	s.maybeFinish(env)
}

// OnMessage implements sim.Process.
func (s *SyncProcess) OnMessage(env sim.Env, _ model.ProcessID, payload any) {
	msg, ok := payload.(reading)
	if !ok {
		return
	}
	// The sender's clock showed msg.Clock when it sent; assuming the
	// midpoint delay d-u/2, the sender's clock now reads
	// msg.Clock + (d - u/2). The difference to our own clock estimates
	// (c_sender - c_self) with error at most ±u/2.
	est := msg.Clock + (s.params.D - s.params.U/2) - env.ClockTime()
	s.estimates = append(s.estimates, est)
	s.maybeFinish(env)
}

// maybeFinish completes the round once all n-1 readings have arrived.
func (s *SyncProcess) maybeFinish(env sim.Env) {
	if s.adjusted || !s.hasPending || len(s.estimates) < env.N()-1 {
		return
	}
	var sum model.Time
	for _, e := range s.estimates {
		sum += e
	}
	s.adjustment = sum / model.Time(env.N())
	s.adjusted = true
	env.Respond(s.pendingOp, s.adjustment)
	s.hasPending = false
}

// RunSyncRound wires n SyncProcesses through a simulator with the given
// true clock offsets and delay policy, runs the round, and returns the
// post-adjustment clock assignment (true offset + computed adjustment).
func RunSyncRound(p model.Params, initial Assignment, delay sim.DelayPolicy) (Assignment, error) {
	procs := make([]sim.Process, p.N)
	syncs := make([]*SyncProcess, p.N)
	// Broadcast at a logical start time every clock has reached: the
	// maximum initial offset plus one delay bound of slack.
	start := p.D
	for _, c := range initial {
		if c > 0 && c+p.D > start {
			start = c + p.D
		}
	}
	for i := range procs {
		syncs[i] = NewSyncProcess(p, start)
		procs[i] = syncs[i]
	}
	offsets := make([]model.Time, len(initial))
	copy(offsets, initial)
	// The simulator validates offsets against p.Epsilon; synchronization
	// must cope with arbitrary initial offsets, so lift the bound here.
	loose := p
	loose.Epsilon = model.Infinity / 4
	s, err := sim.New(sim.Config{Params: loose, ClockOffsets: offsets, Delay: delay, StrictDelays: true}, procs)
	if err != nil {
		return nil, err
	}
	for i := 0; i < p.N; i++ {
		s.Invoke(0, model.ProcessID(i), OpSync, nil)
	}
	if err := s.Run(model.Infinity); err != nil {
		return nil, err
	}
	out := make(Assignment, p.N)
	for i, sp := range syncs {
		adj, ok := sp.Adjustment()
		if !ok {
			return nil, errIncomplete(i)
		}
		out[i] = initial[i] + adj
	}
	return out, nil
}

type errIncomplete int

func (e errIncomplete) Error() string {
	return "clock: synchronization round incomplete at process " + model.ProcessID(e).String()
}
