// Package clock models the drift-free local clocks of Chapter III.B.2 —
// clock time = real time + c_j per process — and implements a
// Lundelius–Lynch (1984) style synchronization round achieving the optimal
// worst-case skew (1-1/n)·u that Chapter V assumes as ε.
package clock

import (
	"fmt"

	"timebounds/internal/model"
)

// Assignment holds one clock offset c_j per process.
type Assignment []model.Time

// Uniform returns n identical (zero) offsets: a perfectly synchronized
// system.
func Uniform(n int) Assignment { return make(Assignment, n) }

// TwoPoint returns n offsets where exactly process p runs skew late and all
// others are at zero — the clock shape used in the Theorem C.1 and E.1
// constructions.
func TwoPoint(n int, p model.ProcessID, skew model.Time) Assignment {
	a := make(Assignment, n)
	a[p] = skew
	return a
}

// MaxSkew returns the largest pairwise offset difference max|c_i - c_j|.
func (a Assignment) MaxSkew() model.Time {
	if len(a) == 0 {
		return 0
	}
	minOff, maxOff := a[0], a[0]
	for _, c := range a[1:] {
		if c < minOff {
			minOff = c
		}
		if c > maxOff {
			maxOff = c
		}
	}
	return maxOff - minOff
}

// Validate checks that the assignment satisfies the ε bound.
func (a Assignment) Validate(epsilon model.Time) error {
	if skew := a.MaxSkew(); skew > epsilon {
		return fmt.Errorf("clock: max skew %s exceeds ε=%s", skew, epsilon)
	}
	return nil
}

// DelayFunc reports the delay experienced by the synchronization message
// from process i to process j; values must lie in [d-u, d].
type DelayFunc func(i, j model.ProcessID) model.Time

// Synchronize runs one Lundelius–Lynch averaging round: every process
// broadcasts its clock reading; each receiver estimates the sender's offset
// using the midpoint assumption (delay ≈ d - u/2) and adjusts its own clock
// by the average estimated difference. The returned assignment has pairwise
// skew at most (1-1/n)·u regardless of the initial offsets and of the
// adversarial choice of delays within [d-u, d].
func Synchronize(p model.Params, initial Assignment, delay DelayFunc) (Assignment, error) {
	n := p.N
	if len(initial) != n {
		return nil, fmt.Errorf("clock: %d offsets for N=%d", len(initial), n)
	}
	mid := p.D - p.U/2
	adjusted := make(Assignment, n)
	for j := 0; j < n; j++ {
		// Sum of estimated differences c_i - c_j, including est(j, j) = 0.
		var sum model.Time
		for i := 0; i < n; i++ {
			if i == j {
				continue
			}
			dl := delay(model.ProcessID(i), model.ProcessID(j))
			if dl < p.MinDelay() || dl > p.D {
				return nil, fmt.Errorf("clock: delay %s from p%d to p%d outside [%s, %s]",
					dl, i, j, p.MinDelay(), p.D)
			}
			// The receiver observes the sender's reading delayed by dl but
			// assumes mid, so its estimate of (c_i - c_j) errs by mid - dl.
			est := (initial[i] - initial[j]) + (mid - dl)
			sum += est
		}
		adjusted[j] = initial[j] + sum/model.Time(n)
	}
	return adjusted, nil
}

// WorstCaseDelay is the adversarial delay choice that maximizes skew after
// Synchronize: every message into process 0 is fastest (d-u), so p0's
// estimates all err by +u/2, while every other message is slowest (d), so
// the remaining estimates err by -u/2. With this adversary the
// post-synchronization skew between p0 and p1 meets the (1-1/n)·u bound
// with equality.
func WorstCaseDelay(p model.Params) DelayFunc {
	return func(_, j model.ProcessID) model.Time {
		if j == 0 {
			return p.MinDelay()
		}
		return p.D
	}
}
