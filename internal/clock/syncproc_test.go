package clock_test

import (
	"math/rand"
	"testing"
	"time"

	"timebounds/internal/clock"
	"timebounds/internal/model"
	"timebounds/internal/sim"
)

func TestRunSyncRoundWorstCase(t *testing.T) {
	// The in-simulator protocol must match the analytic Synchronize under
	// the worst-case adversary: post-sync skew exactly (1-1/n)u.
	for _, n := range []int{2, 3, 4, 6} {
		p := params(n)
		adv := clock.WorstCaseDelay(p)
		delay := sim.FuncDelay(func(from, to model.ProcessID, _ model.Time, _ int) model.Time {
			return adv(from, to)
		})
		out, err := clock.RunSyncRound(p, clock.Uniform(n), delay)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Allow 1ns slack: (1-1/n)u is not an integer for every n, and the
		// two-sided adjustment truncates toward zero.
		got, want := out.MaxSkew(), p.OptimalSkew()
		if diff := got - want; diff < -1 || diff > 1 {
			t.Errorf("n=%d: post-sync skew %s, want %s (±1ns)", n, got, want)
		}
	}
}

func TestRunSyncRoundFromLargeInitialSkew(t *testing.T) {
	// Synchronization must erase arbitrary (large) initial offsets.
	p := params(4)
	initial := clock.Assignment{0, 700 * time.Millisecond, 150 * time.Millisecond, 420 * time.Millisecond}
	out, err := clock.RunSyncRound(p, initial, sim.FixedDelay(p.D-p.U/2))
	if err != nil {
		t.Fatal(err)
	}
	// With exact-midpoint delays the estimates are error-free, so the
	// adjusted clocks agree perfectly.
	if got := out.MaxSkew(); got != 0 {
		t.Errorf("midpoint delays should synchronize exactly; skew %s", got)
	}
}

func TestRunSyncRoundRandomDelaysWithinBound(t *testing.T) {
	p := params(5)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		initial := make(clock.Assignment, p.N)
		for i := range initial {
			initial[i] = model.Time(rng.Int63n(int64(50 * time.Millisecond)))
		}
		out, err := clock.RunSyncRound(p, initial, sim.NewRandomDelay(int64(trial), p.MinDelay(), p.D))
		if err != nil {
			t.Fatal(err)
		}
		if got := out.MaxSkew(); got > p.OptimalSkew() {
			t.Errorf("trial %d: post-sync skew %s exceeds (1-1/n)u = %s", trial, got, p.OptimalSkew())
		}
	}
}

func TestRunSyncRoundMatchesAnalytic(t *testing.T) {
	// The message-level protocol and the closed-form Synchronize must
	// produce identical assignments for the same delay function.
	p := params(4)
	initial := clock.Assignment{
		3 * time.Millisecond, 9 * time.Millisecond, 0, 6 * time.Millisecond,
	}
	delayFn := func(i, j model.ProcessID) model.Time {
		return p.MinDelay() + model.Time((int64(i)*3+int64(j)*5)%int64(p.U+1))
	}
	analytic, err := clock.Synchronize(p, initial, delayFn)
	if err != nil {
		t.Fatal(err)
	}
	simulated, err := clock.RunSyncRound(p, initial, sim.FuncDelay(
		func(from, to model.ProcessID, _ model.Time, _ int) model.Time {
			return delayFn(from, to)
		}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range analytic {
		if analytic[i] != simulated[i] {
			t.Errorf("process %d: analytic %s vs simulated %s", i, analytic[i], simulated[i])
		}
	}
}
