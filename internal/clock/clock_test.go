package clock_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"timebounds/internal/clock"
	"timebounds/internal/model"
)

func params(n int) model.Params {
	return model.Params{
		N:       n,
		D:       10 * time.Millisecond,
		U:       4 * time.Millisecond,
		Epsilon: 4 * time.Millisecond,
	}
}

func TestMaxSkew(t *testing.T) {
	a := clock.Assignment{0, 3 * time.Millisecond, -time.Millisecond}
	if got, want := a.MaxSkew(), model.Time(4*time.Millisecond); got != want {
		t.Errorf("MaxSkew = %s, want %s", got, want)
	}
	if clock.Uniform(5).MaxSkew() != 0 {
		t.Error("uniform assignment should have zero skew")
	}
}

func TestTwoPoint(t *testing.T) {
	a := clock.TwoPoint(4, 2, time.Millisecond)
	if a[2] != model.Time(time.Millisecond) {
		t.Errorf("offset[2] = %s", a[2])
	}
	if a.MaxSkew() != model.Time(time.Millisecond) {
		t.Errorf("MaxSkew = %s", a.MaxSkew())
	}
}

func TestSynchronizeAchievesOptimalSkew(t *testing.T) {
	// Against the worst-case adversary the post-sync skew equals exactly
	// (1-1/n)u (Lundelius–Lynch optimality, used as ε throughout Ch. V).
	for _, n := range []int{2, 3, 4, 8} {
		p := params(n)
		initial := clock.Uniform(n)
		adjusted, err := clock.Synchronize(p, initial, clock.WorstCaseDelay(p))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		bound := p.OptimalSkew()
		if got := adjusted.MaxSkew(); got != bound {
			t.Errorf("n=%d: post-sync skew %s, want exactly (1-1/n)u = %s", n, got, bound)
		}
	}
}

func TestSynchronizeQuickNeverExceedsBound(t *testing.T) {
	// Property: for arbitrary admissible delays and arbitrary bounded
	// initial offsets, one synchronization round never exceeds (1-1/n)u.
	p := params(4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		initial := make(clock.Assignment, p.N)
		for i := range initial {
			initial[i] = model.Time(rng.Int63n(int64(time.Second)))
		}
		delay := func(i, j model.ProcessID) model.Time {
			return p.MinDelay() + model.Time(rng.Int63n(int64(p.U)+1))
		}
		adjusted, err := clock.Synchronize(p, initial, delay)
		if err != nil {
			return false
		}
		return adjusted.MaxSkew() <= p.OptimalSkew()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSynchronizeRejectsBadDelay(t *testing.T) {
	p := params(3)
	_, err := clock.Synchronize(p, clock.Uniform(3), func(i, j model.ProcessID) model.Time {
		return p.D + 1
	})
	if err == nil {
		t.Error("expected rejection of delay > d")
	}
}

func TestValidate(t *testing.T) {
	a := clock.Assignment{0, 2 * time.Millisecond}
	if err := a.Validate(time.Millisecond); err == nil {
		t.Error("expected validation failure for skew > ε")
	}
	if err := a.Validate(2 * time.Millisecond); err != nil {
		t.Errorf("unexpected validation failure: %v", err)
	}
}
