package adversary

import (
	"testing"

	"timebounds/internal/engine"
)

// runFaultFamily expands one fault family at the standard parameter point
// and runs it, returning the engine report.
func runFaultFamily(t *testing.T, as engine.AdversarySpec) engine.Report {
	t.Helper()
	scs, err := as.Scenarios(nil, params(3), 1)
	if err != nil {
		t.Fatalf("%s: Scenarios: %v", as.Name, err)
	}
	rep := engine.Run(scs)
	for _, res := range rep.Results {
		if res.Err != "" {
			t.Fatalf("%s: scenario %q: %s", as.Name, res.Name, res.Err)
		}
		if res.Fault == nil {
			t.Fatalf("%s: scenario %q recorded no fault report", as.Name, res.Name)
		}
	}
	return rep
}

// verdictOf returns the fault verdict of the family member whose scenario
// name contains the run label.
func verdictOf(t *testing.T, rep engine.Report, runName string) string {
	t.Helper()
	for _, nf := range rep.FaultReports() {
		if containsRun(nf.Scenario, runName) {
			return nf.Fault.Verdict
		}
	}
	t.Fatalf("no fault report for run %q", runName)
	return ""
}

func containsRun(scenario, run string) bool {
	return len(scenario) > 0 && len(run) > 0 && indexOf(scenario, "/"+run+"/") >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestFaultFamiliesUpholdDichotomy is the battery's core assertion: every
// member of every fault family lands on exactly one dichotomy horn, so
// every family-level verdict holds.
func TestFaultFamiliesUpholdDichotomy(t *testing.T) {
	for _, as := range FaultFamilies() {
		as := as
		t.Run(as.Name, func(t *testing.T) {
			rep := runFaultFamily(t, as)
			fams := rep.WitnessFamilies()
			if len(fams) != 1 {
				t.Fatalf("witness families = %d, want 1", len(fams))
			}
			f := fams[0]
			if !f.FaultDichotomy {
				t.Fatal("family not marked for the fault dichotomy")
			}
			if !f.Holds() {
				t.Fatalf("family verdict falsified: runs=%d within=%d broken=%d",
					f.Runs, f.WithinBound, f.Broken)
			}
			if err := rep.Err(); err != nil {
				t.Fatalf("Report.Err: %v", err)
			}
		})
	}
}

// TestFaultFamilyHorns pins which horn each engineered run lands on: the
// families were constructed so both horns stay exercised.
func TestFaultFamilyHorns(t *testing.T) {
	want := map[string]map[string]string{
		"fault-crash": {
			"quiet-recover": engine.VerdictWithinBound,
			"mid-op":        engine.VerdictAssumptionBroken,
			"no-recover":    engine.VerdictWithinBound,
		},
		"fault-churn": {
			"clean-leave":  engine.VerdictWithinBound,
			"mid-op-leave": engine.VerdictAssumptionBroken,
		},
		"fault-loss": {
			"in-window":    engine.VerdictAssumptionBroken,
			"after-window": engine.VerdictWithinBound,
		},
		"fault-dup-register": {
			"idempotent": engine.VerdictWithinBound,
		},
		"fault-dup-counter": {
			"double-apply": engine.VerdictAssumptionBroken,
		},
		"fault-partition": {
			"islanded": engine.VerdictAssumptionBroken,
			"healed":   engine.VerdictWithinBound,
		},
		"fault-drift": {
			"common-mode":  engine.VerdictWithinBound,
			"differential": engine.VerdictAssumptionBroken,
		},
	}
	for _, as := range FaultFamilies() {
		as := as
		t.Run(as.Name, func(t *testing.T) {
			expected, ok := want[as.Name]
			if !ok {
				t.Fatalf("no horn expectations for family %s", as.Name)
			}
			rep := runFaultFamily(t, as)
			for run, verdict := range expected {
				if got := verdictOf(t, rep, run); got != verdict {
					t.Errorf("run %s: verdict %s, want %s", run, got, verdict)
				}
			}
		})
	}
}

// TestFaultFamilyLookup pins the registry surface.
func TestFaultFamilyLookup(t *testing.T) {
	names := FaultFamilyNames()
	if len(names) != len(FaultFamilies()) {
		t.Fatalf("names %d != families %d", len(names), len(FaultFamilies()))
	}
	for _, name := range names {
		as, err := FaultFamilyByName(name)
		if err != nil {
			t.Fatalf("FaultFamilyByName(%q): %v", name, err)
		}
		if as.Name != name || !as.FaultDichotomy {
			t.Fatalf("FaultFamilyByName(%q) = %+v", name, as.Name)
		}
	}
	if _, err := FaultFamilyByName("meteor"); err == nil {
		t.Fatal("unknown family should error")
	}
}

// TestFaultFamiliesRejectSmallN pins the cast-size guard.
func TestFaultFamiliesRejectSmallN(t *testing.T) {
	for _, as := range FaultFamilies() {
		if _, err := as.Runs(params(2)); err == nil {
			t.Errorf("%s: n=2 should be rejected", as.Name)
		}
	}
}
