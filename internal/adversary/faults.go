package adversary

import (
	"fmt"

	"timebounds/internal/engine"
	"timebounds/internal/fault"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

// This file makes the model's *assumptions* executable the way the theorem
// files make its *bounds* executable: each fault family is an
// engine.AdversarySpec whose member runs strike one assumption — crash-free
// processes, fixed membership, reliable at-most-once delivery, full
// connectivity, ε-bounded skew — at engineered moments. The families are
// judged by the fault dichotomy rather than the latency dichotomy: every
// member run must land on exactly one horn (within the crash-adjusted
// bound, or a report naming the broken assumption and by how much), and
// most families pair a within-bound member with a broken one so both horns
// stay exercised.

// planOnly wraps a fixed plan builder as a per-run fault spec.
func planOnly(name string, build func(p model.Params) *fault.Plan) engine.FaultSpec {
	return engine.FaultSpec{
		Name:  name,
		Build: func(p model.Params, _ int64) *fault.Plan { return build(p) },
	}
}

// inv is shorthand for one explicit invocation. Arguments must match the
// data type's native representation (the counter counts ints; accessors
// take nil).
func inv(at model.Time, proc model.ProcessID, kind spec.OpKind, arg spec.Value) workload.Invocation {
	return workload.Invocation{At: at, Proc: proc, Kind: kind, Arg: arg}
}

// needN rejects parameter points too small for the family's cast.
func needN(p model.Params, n int, family string) error {
	if p.N < n {
		return fmt.Errorf("adversary: fault family %s needs n ≥ %d, got %d", family, n, p.N)
	}
	return nil
}

// CrashFaultSpec exercises the crash-free-processes assumption three ways:
// a crash in a quiet window with recovery (the system absorbs it — within
// bound), a crash mid-operation (the in-flight op is orphaned — broken),
// and a crash with no recovery while survivors carry the load (within
// bound again, on a shrunken cluster).
func CrashFaultSpec() engine.AdversarySpec {
	return engine.AdversarySpec{
		Name:           "fault-crash",
		DataType:       types.NewRMWRegister(0),
		WitnessKinds:   []spec.OpKind{types.OpRMW},
		Bound:          func(p model.Params) model.Time { return p.D + p.Epsilon },
		FaultDichotomy: true,
		Runs: func(p model.Params) ([]engine.AdversaryRun, error) {
			if err := needN(p, 3, "fault-crash"); err != nil {
				return nil, err
			}
			d := p.D
			victim := model.ProcessID(p.N - 1)
			return []engine.AdversaryRun{
				{
					Name: "quiet-recover",
					Faults: planOnly("crash-quiet", func(p model.Params) *fault.Plan {
						return &fault.Plan{Name: "crash-quiet", Crashes: []fault.Crash{
							{Proc: victim, At: 3 * d, RecoverAt: 9 * d},
						}}
					}),
					// No operation touches the victim's downtime window.
					Schedule: []workload.Invocation{
						inv(d, 0, types.OpRMW, 1),
						inv(12*d, 1, types.OpRMW, 2),
						inv(14*d, 2, types.OpRMW, 3),
					},
				},
				{
					Name: "mid-op",
					Faults: planOnly("crash-mid-op", func(p model.Params) *fault.Plan {
						return &fault.Plan{Name: "crash-mid-op", Crashes: []fault.Crash{
							{Proc: 0, At: d + d/2},
						}}
					}),
					// Proc 0's RMW is in flight (it responds around d+ε)
					// when the crash lands at 1.5d: orphaned forever.
					Schedule: []workload.Invocation{
						inv(d, 0, types.OpRMW, 1),
						inv(4*d, 1, types.OpRMW, 2),
						inv(6*d, 2, types.OpRMW, 3),
					},
				},
				{
					Name: "no-recover",
					Faults: planOnly("crash-forever", func(p model.Params) *fault.Plan {
						return &fault.Plan{Name: "crash-forever", Crashes: []fault.Crash{
							{Proc: victim, At: 3 * d},
						}}
					}),
					// Only survivors invoke; the cluster serves on without
					// the victim.
					Schedule: []workload.Invocation{
						inv(d, 0, types.OpRMW, 1),
						inv(5*d, 1, types.OpRMW, 2),
					},
				},
			}, nil
		},
	}
}

// ChurnFaultSpec exercises the fixed-membership assumption: a clean
// retirement between operations (within bound) against a retirement that
// cuts down a replica mid-operation (broken — the op is orphaned).
func ChurnFaultSpec() engine.AdversarySpec {
	return engine.AdversarySpec{
		Name:           "fault-churn",
		DataType:       types.NewRMWRegister(0),
		WitnessKinds:   []spec.OpKind{types.OpRMW},
		Bound:          func(p model.Params) model.Time { return p.D + p.Epsilon },
		FaultDichotomy: true,
		Runs: func(p model.Params) ([]engine.AdversaryRun, error) {
			if err := needN(p, 3, "fault-churn"); err != nil {
				return nil, err
			}
			d := p.D
			leaver := model.ProcessID(p.N - 1)
			retire := planOnly("retire", func(p model.Params) *fault.Plan {
				return &fault.Plan{Name: "retire", Retires: []fault.Retire{
					{Proc: leaver, At: 5 * d},
				}}
			})
			return []engine.AdversaryRun{
				{
					Name:   "clean-leave",
					Faults: retire,
					Schedule: []workload.Invocation{
						inv(d, 0, types.OpRMW, 1),
						inv(7*d, 1, types.OpRMW, 2),
					},
				},
				{
					Name:   "mid-op-leave",
					Faults: retire,
					// The leaver's own RMW is still in flight at 5d.
					Schedule: []workload.Invocation{
						inv(d, 0, types.OpRMW, 1),
						inv(5*d-d/2, leaver, types.OpRMW, 2),
						inv(8*d, 1, types.OpRMW, 3),
					},
				},
			}, nil
		},
	}
}

// LossFaultSpec exercises the reliable-delivery assumption: a write whose
// broadcast falls entirely inside a loss window leaves the writer's copy
// ahead of everyone else's (broken — divergence), while a write after the
// window propagates normally (within bound).
func LossFaultSpec() engine.AdversarySpec {
	blackout := planOnly("blackout", func(p model.Params) *fault.Plan {
		return &fault.Plan{Name: "blackout", Losses: []fault.Loss{
			{From: 0, To: -1, Start: 2 * p.D, End: 8 * p.D, Every: 1},
		}}
	})
	return engine.AdversarySpec{
		Name:           "fault-loss",
		DataType:       types.NewRegister(0),
		WitnessKinds:   []spec.OpKind{types.OpWrite},
		Bound:          func(p model.Params) model.Time { return p.D + p.Epsilon },
		FaultDichotomy: true,
		Runs: func(p model.Params) ([]engine.AdversaryRun, error) {
			if err := needN(p, 3, "fault-loss"); err != nil {
				return nil, err
			}
			d := p.D
			return []engine.AdversaryRun{
				{
					Name:   "in-window",
					Faults: blackout,
					Schedule: []workload.Invocation{
						inv(3*d, 0, types.OpWrite, 7),
						inv(6*d, 2, types.OpRead, nil),
					},
				},
				{
					Name:   "after-window",
					Faults: blackout,
					Schedule: []workload.Invocation{
						inv(9*d, 0, types.OpWrite, 7),
						inv(12*d, 2, types.OpRead, nil),
					},
				},
			}, nil
		},
	}
}

// DupRegisterFaultSpec and DupCounterFaultSpec exercise the at-most-once
// delivery assumption with the same duplication plan against two objects:
// a register write is idempotent, so the duplicate is absorbed (within
// bound); a counter increment is not, so the duplicate double-applies on
// every remote copy (broken — divergence).
func dupPlan() engine.FaultSpec {
	return planOnly("dup", func(p model.Params) *fault.Plan {
		return &fault.Plan{Name: "dup", Dups: []fault.Duplicate{
			{From: 0, To: -1, Start: 2 * p.D, End: 8 * p.D, Copies: 2, Spacing: 1},
		}}
	})
}

// DupRegisterFaultSpec is the idempotent-object half of the duplication
// pair: the duplicated write leaves every copy in the same state.
func DupRegisterFaultSpec() engine.AdversarySpec {
	return engine.AdversarySpec{
		Name:           "fault-dup-register",
		DataType:       types.NewRegister(0),
		WitnessKinds:   []spec.OpKind{types.OpWrite},
		Bound:          func(p model.Params) model.Time { return p.D + p.Epsilon },
		FaultDichotomy: true,
		Runs: func(p model.Params) ([]engine.AdversaryRun, error) {
			if err := needN(p, 3, "fault-dup-register"); err != nil {
				return nil, err
			}
			d := p.D
			return []engine.AdversaryRun{{
				Name:   "idempotent",
				Faults: dupPlan(),
				Schedule: []workload.Invocation{
					inv(3*d, 0, types.OpWrite, 5),
					inv(6*d, 1, types.OpRead, nil),
				},
			}}, nil
		},
	}
}

// DupCounterFaultSpec is the non-idempotent half of the duplication pair:
// the duplicated increment double-applies on every remote copy.
func DupCounterFaultSpec() engine.AdversarySpec {
	return engine.AdversarySpec{
		Name:           "fault-dup-counter",
		DataType:       types.NewCounter(),
		WitnessKinds:   []spec.OpKind{types.OpIncrement},
		Bound:          func(p model.Params) model.Time { return p.D + p.Epsilon },
		FaultDichotomy: true,
		Runs: func(p model.Params) ([]engine.AdversaryRun, error) {
			if err := needN(p, 3, "fault-dup-counter"); err != nil {
				return nil, err
			}
			d := p.D
			return []engine.AdversaryRun{{
				Name:   "double-apply",
				Faults: dupPlan(),
				Schedule: []workload.Invocation{
					inv(3*d, 0, types.OpIncrement, 1),
					inv(6*d, 1, types.OpGet, nil),
				},
			}}, nil
		},
	}
}

// PartitionFaultSpec exercises the full-connectivity assumption: a write
// issued inside the partition window never crosses the cut (broken —
// divergence), while the same write after healing propagates (within
// bound).
func PartitionFaultSpec() engine.AdversarySpec {
	island := planOnly("island", func(p model.Params) *fault.Plan {
		return &fault.Plan{Name: "island", Partitions: []fault.Partition{
			{Start: 3 * p.D, End: 7 * p.D, Group: []model.ProcessID{0}},
		}}
	})
	return engine.AdversarySpec{
		Name:           "fault-partition",
		DataType:       types.NewRegister(0),
		WitnessKinds:   []spec.OpKind{types.OpWrite},
		Bound:          func(p model.Params) model.Time { return p.D + p.Epsilon },
		FaultDichotomy: true,
		Runs: func(p model.Params) ([]engine.AdversaryRun, error) {
			if err := needN(p, 3, "fault-partition"); err != nil {
				return nil, err
			}
			d := p.D
			return []engine.AdversaryRun{
				{
					Name:   "islanded",
					Faults: island,
					Schedule: []workload.Invocation{
						inv(4*d, 0, types.OpWrite, 9),
						inv(5*d, 1, types.OpRead, nil),
					},
				},
				{
					Name:   "healed",
					Faults: island,
					Schedule: []workload.Invocation{
						inv(8*d, 0, types.OpWrite, 9),
						inv(11*d, 1, types.OpRead, nil),
					},
				},
			}, nil
		},
	}
}

// DriftFaultSpec exercises the ε-bounded-skew assumption with continuously
// drifting clocks. The mild run drifts every clock at the same rate:
// pairwise skew never grows, waits stretch by the rate factor the fault
// allowance grants, and the run stays within bound. The harsh run drifts
// the endpoints apart at ±2%, so the pairwise skew leaves the ε envelope
// within a few d — the broken horn reports the excess. Its schedule places
// the fast clock's RMW just before the slow clock's, inside the window
// where the drifted timestamps can invert the invocation order.
func DriftFaultSpec() engine.AdversarySpec {
	return engine.AdversarySpec{
		Name:           "fault-drift",
		DataType:       types.NewRMWRegister(0),
		WitnessKinds:   []spec.OpKind{types.OpRMW},
		Bound:          func(p model.Params) model.Time { return p.D + p.Epsilon },
		FaultDichotomy: true,
		Runs: func(p model.Params) ([]engine.AdversaryRun, error) {
			if err := needN(p, 3, "fault-drift"); err != nil {
				return nil, err
			}
			d := p.D
			fast := model.ProcessID(p.N - 1)
			return []engine.AdversaryRun{
				{
					Name: "common-mode",
					Faults: planOnly("drift-common", func(p model.Params) *fault.Plan {
						drifts := make([]fault.Drift, p.N)
						for i := range drifts {
							drifts[i] = fault.Drift{Proc: model.ProcessID(i), PPM: -400}
						}
						return &fault.Plan{Name: "drift-common", Drifts: drifts}
					}),
					Schedule: []workload.Invocation{
						inv(d, 0, types.OpRMW, 1),
						inv(3*d, 1, types.OpRMW, 2),
						inv(5*d, 2, types.OpRMW, 3),
					},
				},
				{
					Name: "differential",
					Faults: planOnly("drift-differential", func(p model.Params) *fault.Plan {
						return &fault.Plan{Name: "drift-differential", Drifts: []fault.Drift{
							{Proc: 0, PPM: -20_000},
							{Proc: model.ProcessID(p.N - 1), PPM: 20_000},
						}}
					}),
					Schedule: []workload.Invocation{
						inv(8*d, fast, types.OpRMW, 1),
						inv(8*d+p.Epsilon+d/8, 0, types.OpRMW, 2),
					},
				},
			}, nil
		},
	}
}

// FaultFamilies returns every bundled fault family, in a fixed order.
func FaultFamilies() []engine.AdversarySpec {
	return []engine.AdversarySpec{
		CrashFaultSpec(),
		ChurnFaultSpec(),
		LossFaultSpec(),
		DupRegisterFaultSpec(),
		DupCounterFaultSpec(),
		PartitionFaultSpec(),
		DriftFaultSpec(),
	}
}

// FaultFamilyNames lists the bundled fault family names, in order.
func FaultFamilyNames() []string {
	fams := FaultFamilies()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name
	}
	return names
}

// FaultFamilyByName resolves a bundled fault family by name.
func FaultFamilyByName(name string) (engine.AdversarySpec, error) {
	for _, f := range FaultFamilies() {
		if f.Name == name {
			return f, nil
		}
	}
	return engine.AdversarySpec{}, fmt.Errorf("adversary: unknown fault family %q", name)
}
