package adversary

import (
	"testing"

	"timebounds/internal/model"
)

// absDiff returns |a-b|.
func absDiff(a, b model.Time) model.Time {
	if a > b {
		return a - b
	}
	return b - a
}

func TestEmpiricalThresholdTheoremC1(t *testing.T) {
	// Binary-search the largest violating OOP latency: it must sit exactly
	// at the Theorem C.1 bound d + min{ε,u,d/3} (±1ns discretization).
	p := params(3)
	bound := p.D + M(p)
	for _, useQueue := range []bool{false, true} {
		got, err := FindThreshold(C1Violates(p, useQueue), p.D/2, p.D+2*p.Epsilon)
		if err != nil {
			t.Fatalf("queue=%v: %v", useQueue, err)
		}
		if absDiff(got, bound) > 1 {
			t.Errorf("queue=%v: empirical threshold %s, proved bound %s", useQueue, got, bound)
		}
	}
}

func TestEmpiricalThresholdTheoremD1(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		p := params(n)
		bound := model.Time(int64(p.U) * int64(n-1) / int64(n))
		got, err := FindThreshold(D1Violates(p), 0, p.U)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if absDiff(got, bound) > 1 {
			t.Errorf("n=%d: empirical threshold %s, proved bound (1-1/k)u = %s", n, got, bound)
		}
	}
}

func TestEmpiricalThresholdTheoremE1(t *testing.T) {
	// For the Algorithm 1 implementation family with fixed X, the mutator
	// acknowledgment below ε+X breaks the accessor's timestamp horizon:
	// the empirical mutator threshold is exactly ε+X, i.e. the full ε+X
	// wait of Chapter V is load-bearing, not slack.
	p := params(3)
	for _, x := range []model.Time{0, p.Epsilon / 2, p.Epsilon} {
		want := p.Epsilon + x
		got, err := FindThreshold(E1Violates(p, x), 0, p.D)
		if err != nil {
			t.Fatalf("X=%s: %v", x, err)
		}
		if absDiff(got, want) > 1 {
			t.Errorf("X=%s: empirical mutator threshold %s, want ε+X = %s", x, got, want)
		}
	}
}

func TestFindThresholdEdgeCases(t *testing.T) {
	// Passing everywhere returns lo.
	got, err := FindThreshold(func(model.Time) (bool, error) { return false, nil }, 10, 100)
	if err != nil || got != 10 {
		t.Errorf("all-passing: got %d, %v", got, err)
	}
	// Violating everywhere errors.
	if _, err := FindThreshold(func(model.Time) (bool, error) { return true, nil }, 10, 100); err == nil {
		t.Error("all-violating should error")
	}
	// Exact step function is located precisely.
	const step = 57
	got, err = FindThreshold(func(l model.Time) (bool, error) { return l < step, nil }, 0, 1000)
	if err != nil || got != step {
		t.Errorf("step: got %d, %v", got, err)
	}
}
