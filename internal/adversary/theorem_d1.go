package adversary

import (
	"timebounds/internal/engine"
	"timebounds/internal/model"
)

// D1Config configures the Theorem D.1 scenario: k concurrent instances of
// an eventually non-self-last-permuting pure mutator (write on a register)
// against the (1-1/k)u lower bound.
type D1Config struct {
	// Params are the system parameters. Params.Epsilon must be at least
	// (1-1/k)u for the shifted run's clock assignment to be admissible
	// (the optimal skew (1-1/n)u suffices when k ≤ n).
	Params model.Params
	// K is the number of concurrent writers (2 ≤ K ≤ Params.N). Zero
	// defaults to Params.N — the eventually non-self-last-permuting case
	// where the bound is largest. The theorem is stated for any n ≥ k;
	// the remaining processes idle with mid-range delays (Fig. 10).
	K int
	// MutatorLatency is the pure-mutator response time of the
	// implementation under test. Values < (1-1/k)u produce a violation in
	// the shifted run R2; the bound value or above does not.
	MutatorLatency model.Time
}

// Bound returns the (1-1/k)u lower bound the configuration tests.
func (c D1Config) Bound() model.Time { return d1Bound(c.Params, c.K, ShiftFraction{}) }

// d1Shift returns the proof's Step 2 shift vector for last-operation z:
// x_i = (((z-i) mod k)/k - (k-1)/(2k)) · u, so that p_z moves
// (k-1)/(2k)·u earlier and p_{(z+1) mod k} moves (k-1)/(2k)·u later.
func d1Shift(k, z int, u model.Time) []model.Time {
	xs := make([]model.Time, k)
	for i := 0; i < k; i++ {
		num := int64(((z-i)%k+k)%k)*2 - int64(k-1) // 2k·x_i / u
		xs[i] = model.Time(int64(u) * num / int64(2*k))
	}
	return xs
}

// d1BaseDelays returns R1's delay matrix (Fig. 10): the k participating
// writers form the ring d_{i,j} = d - (((i-j) mod k)/k)·u; every pair
// involving an idle process l ≥ k uses d - u/2, exactly as the proof
// prescribes for k ≤ l ≤ n-1.
func d1BaseDelays(p model.Params, k int) [][]model.Time {
	n := p.N
	m := make([][]model.Time, n)
	for i := range m {
		m[i] = make([]model.Time, n)
		for j := range m[i] {
			if i == j {
				continue
			}
			if i >= k || j >= k {
				m[i][j] = p.D - p.U/2
				continue
			}
			rot := ((i-j)%k + k) % k
			m[i][j] = p.D - model.Time(int64(p.U)*int64(rot)/int64(k))
		}
	}
	return m
}

// shiftDelays applies formula (4.1): d'_{i,j} = d_{i,j} - x_i + x_j.
func shiftDelays(base [][]model.Time, xs []model.Time) [][]model.Time {
	k := len(base)
	out := make([][]model.Time, k)
	for i := range out {
		out[i] = make([]model.Time, k)
		for j := range out[i] {
			if i == j {
				continue
			}
			out[i][j] = base[i][j] - xs[i] + xs[j]
		}
	}
	return out
}

// TheoremD1 executes the Theorem D.1 construction as an engine grid. It
// runs R1 (all k writers invoke concurrently at identical clocks over the
// ring delays, Fig. 11) and R2 (the standard shift of R1 by the Step 2
// vector, Fig. 14), followed in each case by a read that exposes the final
// register value. The returned outcomes are [R1, R2].
//
// In R2 the writer p_z whose write the implementation orders last responds
// (k-1)/k·u before p_{(z+1) mod k}'s write begins, so any implementation
// whose writes respond in under (1-1/k)u leaves a final state that no
// real-time-respecting permutation explains.
func TheoremD1(cfg D1Config) ([]Outcome, error) {
	as := d1SpecFor("d1", cfg.K,
		func(model.Params) model.Time { return cfg.MutatorLatency }, ShiftFraction{})
	return runSpec(as, engine.Algorithm1{}, cfg.Params)
}

func uniformTimes(k int, t model.Time) []model.Time {
	out := make([]model.Time, k)
	for i := range out {
		out[i] = t
	}
	return out
}
