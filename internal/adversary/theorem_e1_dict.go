package adversary

import (
	"timebounds/internal/core"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/types"
)

// theoremE1Dict is the Theorem E.1 construction instantiated on a
// dictionary: put("k", "x") is a non-overwriting pure mutator (it leaves
// other keys intact) and dict-get("k") the pure accessor that orders it.
// The adversarial shape is identical to TheoremE1's queue instantiation:
// the accessor's clock runs ε behind, delays are slowest-admissible, and
// the get is invoked strictly after the put's (possibly premature) ack.
func theoremE1Dict(p model.Params, x, mutatorLatency model.Time) (Outcome, error) {
	tuning := core.Tuning{}
	if mutatorLatency < p.Epsilon+x {
		tuning.MutatorResponse = core.OverrideTime{Override: true, Value: mutatorLatency}
	}
	offsets := make([]model.Time, p.N)
	offsets[0] = -p.Epsilon

	cluster, err := core.NewCluster(
		core.Config{Params: p, X: x, Tuning: tuning},
		types.NewDict(),
		sim.Config{
			ClockOffsets: offsets,
			Delay:        sim.FixedDelay(p.D),
			StrictDelays: true,
		},
	)
	if err != nil {
		return Outcome{}, err
	}
	t := 4 * p.D
	cluster.Invoke(t, 1, types.OpPut, types.KV{Key: "k", Value: "x"})
	cluster.Invoke(t+mutatorLatency+1, 0, types.OpDictGet, "k")
	cluster.Invoke(t+6*p.D, 2, types.OpDictGet, "k")
	return runCluster(cluster, 100*p.D, types.OpPut, types.OpDictGet)
}
