package adversary

import (
	"timebounds/internal/engine"
	"timebounds/internal/model"
	"timebounds/internal/types"
)

// theoremE1Dict is the Theorem E.1 construction instantiated on a
// dictionary: put("k", "x") is a non-overwriting pure mutator (it leaves
// other keys intact) and dict-get("k") the pure accessor that orders it.
// The adversarial shape is identical to TheoremE1's queue instantiation:
// the accessor's clock runs ε behind, delays are slowest-admissible, and
// the get is invoked strictly after the put's (possibly premature) ack.
func theoremE1Dict(p model.Params, x, mutatorLatency model.Time) (Outcome, error) {
	as := e1SpecFor("e1-dict", types.NewDict(), types.OpPut, types.OpDictGet,
		types.KV{Key: "k", Value: "x"}, "k",
		func(model.Params) model.Time { return x },
		func(model.Params) model.Time { return mutatorLatency },
		ShiftFraction{})
	outs, err := runSpec(as, engine.Algorithm1{}, p)
	if err != nil {
		return Outcome{}, err
	}
	return outs[0], nil
}
