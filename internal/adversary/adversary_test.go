package adversary

import (
	"testing"
	"time"

	"timebounds/internal/model"
)

func params(n int) model.Params {
	p := model.Params{
		N: n,
		D: 10 * time.Millisecond,
		U: 4 * time.Millisecond,
	}
	p.Epsilon = p.OptimalSkew()
	return p
}

func TestFigure1NaiveRegisterViolates(t *testing.T) {
	out, err := Figure1(params(3))
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	if out.Linearizable() {
		t.Fatalf("naive zero-latency register should violate linearizability:\n%s", out.History)
	}
}

func TestTheoremC1PrematureViolates(t *testing.T) {
	p := params(3)
	m := M(p)
	bound := p.D + m
	for _, tc := range []struct {
		name    string
		latency model.Time
		queue   bool
	}{
		{"rmw-just-below-bound", bound - 1, false},
		{"rmw-at-d", p.D, false},
		{"rmw-way-below", p.D / 2, false},
		{"dequeue-just-below-bound", bound - 1, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			outs, err := TheoremC1(C1Config{Params: p, OOPLatency: tc.latency, UseQueue: tc.queue})
			if err != nil {
				t.Fatalf("TheoremC1: %v", err)
			}
			anyViolation := false
			for i, o := range outs {
				if o.WorstLatency >= bound {
					t.Errorf("run %d: worst latency %s not below bound %s; premature tuning ineffective",
						i, o.WorstLatency, bound)
				}
				if !o.Linearizable() {
					anyViolation = true
				}
			}
			if !anyViolation {
				t.Errorf("no violation in any constructed run despite latency %s < bound %s", tc.latency, bound)
			}
		})
	}
}

func TestTheoremC1CorrectAlgorithmPasses(t *testing.T) {
	p := params(3)
	for _, queue := range []bool{false, true} {
		outs, err := TheoremC1(C1Config{Params: p, OOPLatency: p.D + p.Epsilon, UseQueue: queue})
		if err != nil {
			t.Fatalf("TheoremC1: %v", err)
		}
		for i, o := range outs {
			if !o.Linearizable() {
				t.Errorf("queue=%v run %d: correct algorithm produced a violation:\n%s",
					queue, i, o.History)
			}
			if o.WorstLatency > p.D+p.Epsilon {
				t.Errorf("queue=%v run %d: latency %s exceeds d+ε", queue, i, o.WorstLatency)
			}
		}
	}
}

func TestTheoremD1PrematureViolates(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		p := params(n)
		bound := model.Time(int64(p.U) * int64(n-1) / int64(n))
		outs, err := TheoremD1(D1Config{Params: p, MutatorLatency: bound - 1})
		if err != nil {
			t.Fatalf("n=%d TheoremD1: %v", n, err)
		}
		if len(outs) != 2 {
			t.Fatalf("n=%d: want outcomes [R1, R2], got %d", n, len(outs))
		}
		if !outs[0].Linearizable() {
			t.Errorf("n=%d: R1 (fully concurrent) should be linearizable:\n%s", n, outs[0].History)
		}
		if outs[1].Linearizable() {
			t.Errorf("n=%d: R2 (shifted) should violate with latency %s < (1-1/k)u=%s:\n%s",
				n, bound-1, bound, outs[1].History)
		}
	}
}

func TestTheoremD1AtBoundPasses(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		p := params(n)
		bound := model.Time(int64(p.U) * int64(n-1) / int64(n))
		outs, err := TheoremD1(D1Config{Params: p, MutatorLatency: bound})
		if err != nil {
			t.Fatalf("n=%d TheoremD1: %v", n, err)
		}
		for i, o := range outs {
			if !o.Linearizable() {
				t.Errorf("n=%d run %d: latency = bound (1-1/k)u should pass:\n%s", n, i, o.History)
			}
		}
	}
}

func TestTheoremE1PrematurePairViolates(t *testing.T) {
	p := params(3)
	bound := p.D + M(p)
	// Pair = Lm + (d+ε-X). Pick X near its max so a small Lm puts the pair
	// in [d, d+m), the regime the ε-skew mechanism (not plain message
	// delay) must catch.
	x := p.Epsilon + M(p)/2
	lm := model.Time(0)
	cfg := E1Config{Params: p, X: x, MutatorLatency: lm}
	if got := cfg.PairLatency(); got >= bound {
		t.Fatalf("test bug: pair %s not below bound %s", got, bound)
	}
	out, err := TheoremE1(cfg)
	if err != nil {
		t.Fatalf("TheoremE1: %v", err)
	}
	if out.Linearizable() {
		t.Fatalf("pair latency %s < bound %s should violate:\n%s", cfg.PairLatency(), bound, out.History)
	}
}

func TestTheoremE1CorrectPairPasses(t *testing.T) {
	p := params(3)
	for _, x := range []model.Time{0, p.Epsilon, p.D + p.Epsilon - p.U} {
		cfg := E1Config{Params: p, X: x, MutatorLatency: p.Epsilon + x}
		out, err := TheoremE1(cfg)
		if err != nil {
			t.Fatalf("X=%s TheoremE1: %v", x, err)
		}
		if !out.Linearizable() {
			t.Errorf("X=%s: correct pair (|mop|+|aop| = d+2ε) should pass:\n%s", x, out.History)
		}
	}
}
