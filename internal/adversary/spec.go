package adversary

import (
	"fmt"

	"timebounds/internal/core"
	"timebounds/internal/engine"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

// ShiftFraction scales a construction's clock-shift magnitude relative to
// the proof's full shift. The zero value means the full shift; Frac sets an
// explicit fraction (including zero — no shift at all). Weakening the shift
// weakens the adversary: the bound its run family witnesses shrinks
// proportionally, so an implementation tuned just below the full-shift
// bound stops violating — the experimental knob behind the "witness
// disappears below threshold" regression tests.
type ShiftFraction struct {
	set  bool
	frac float64
}

// Frac returns an explicit shift fraction (usually in [0, 1]).
func Frac(f float64) ShiftFraction { return ShiftFraction{set: true, frac: f} }

// of scales the full shift magnitude.
func (s ShiftFraction) of(full model.Time) model.Time {
	if !s.set {
		return full
	}
	return model.Time(float64(full) * s.frac)
}

// override is shorthand for a set core.OverrideTime.
func override(v model.Time) core.OverrideTime {
	return core.OverrideTime{Override: true, Value: v}
}

// matrixPolicy wraps an immutable delay matrix as a DelaySpec policy
// builder. MatrixDelay carries no per-run state, so returning the same
// matrix value from every call keeps runs isolated.
func matrixPolicy(m sim.MatrixDelay) func(model.Params, int64) sim.DelayPolicy {
	return func(model.Params, int64) sim.DelayPolicy { return m }
}

// --- Theorem C.1 ----------------------------------------------------------

// C1Spec returns the Theorem C.1 adversary as an engine spec: the R1/R2/R3
// run family for strongly immediately non-self-commuting operations,
// instantiated with read-modify-write on a register (or dequeue on a queue),
// witnessing the d + min{ε,u,d/3} lower bound. correct selects the
// proven-correct d+ε tuning; otherwise the implementation is premature —
// tuned one time unit below the full-shift bound, which the full-shift
// family must catch and a sub-threshold shift must not.
func C1Spec(useQueue, correct bool, shift ShiftFraction) engine.AdversarySpec {
	name := "c1"
	if useQueue {
		name = "c1-queue"
	}
	latency := func(p model.Params) model.Time { return p.D + M(p) - 1 }
	if correct {
		name += ":correct"
		latency = func(p model.Params) model.Time { return p.D + p.Epsilon }
	} else {
		name += ":premature"
	}
	as := c1SpecFor(name, useQueue, latency, shift)
	as.RequireLinearizable = correct
	return as
}

// c1SpecFor builds the C.1 spec for an arbitrary target-latency function;
// the config-driven TheoremC1 wrapper reuses it with a fixed latency.
func c1SpecFor(name string, useQueue bool, latency func(model.Params) model.Time, shift ShiftFraction) engine.AdversarySpec {
	var dt spec.DataType
	var kind spec.OpKind
	if useQueue {
		dt = types.NewQueue()
		kind = types.OpDequeue
	} else {
		dt = types.NewRMWRegister(0)
		kind = types.OpRMW
	}
	return engine.AdversarySpec{
		Name:         name,
		DataType:     dt,
		Tuning:       func(p model.Params) core.Tuning { return c1Tuning(p, latency(p)) },
		Bound:        func(p model.Params) model.Time { return p.D + shift.of(M(p)) },
		WitnessKinds: []spec.OpKind{kind},
		Runs: func(p model.Params) ([]engine.AdversaryRun, error) {
			if p.N < 3 {
				return nil, fmt.Errorf("adversary: Theorem C.1 needs n ≥ 3, got %d", p.N)
			}
			m := shift.of(M(p))
			var out []engine.AdversaryRun
			for _, r := range c1Family(p, 8*p.D, m) {
				out = append(out, engine.AdversaryRun{
					Name:         r.name,
					ClockOffsets: r.offsets,
					Delay:        engine.DelaySpec{Label: name, Policy: matrixPolicy(r.delays)},
					Schedule:     c1Schedule(useQueue, r),
				})
			}
			return out, nil
		},
	}
}

// c1Schedule is the invocation schedule of one C.1 run: for the queue
// instantiation an early enqueue seeds the single element the two dequeues
// race for (Chapter II.B's witness); a negative invokeJ suppresses op2
// (runs R'1, R”'3 execute a single operation).
func c1Schedule(useQueue bool, r c1Run) []workload.Invocation {
	var invs []workload.Invocation
	if useQueue {
		invs = append(invs, workload.Invocation{At: 0, Proc: 2, Kind: types.OpEnqueue, Arg: "X"})
		invs = append(invs, workload.Invocation{At: r.invokeI, Proc: 0, Kind: types.OpDequeue})
		if r.invokeJ >= 0 {
			invs = append(invs, workload.Invocation{At: r.invokeJ, Proc: 1, Kind: types.OpDequeue})
		}
		return invs
	}
	// rmw(arg) returns the old value and installs arg; two concurrent
	// instances must not both observe the initial value.
	invs = append(invs, workload.Invocation{At: r.invokeI, Proc: 0, Kind: types.OpRMW, Arg: 1})
	if r.invokeJ >= 0 {
		invs = append(invs, workload.Invocation{At: r.invokeJ, Proc: 1, Kind: types.OpRMW, Arg: 2})
	}
	return invs
}

// --- Theorem D.1 ----------------------------------------------------------

// D1Spec returns the Theorem D.1 adversary as an engine spec: k concurrent
// writers over the ring delay matrix (R1) and its Step 2 shift (R2),
// witnessing the (1-1/k)u pure-mutator lower bound. k = 0 means k = n.
// correct keeps the default ε+X mutator wait; otherwise the mutator is
// tuned one time unit below the full-shift bound.
func D1Spec(k int, correct bool, shift ShiftFraction) engine.AdversarySpec {
	name := "d1"
	latency := func(p model.Params) model.Time { return d1RealizedBound(p, k, ShiftFraction{}) - 1 }
	if correct {
		name += ":correct"
		latency = func(p model.Params) model.Time { return p.Epsilon }
	} else {
		name += ":premature"
	}
	as := d1SpecFor(name, k, latency, shift)
	as.RequireLinearizable = correct
	return as
}

// d1Bound returns the theorem's (possibly shift-scaled) (1-1/k)u bound for
// k writers (k = 0 means n).
func d1Bound(p model.Params, k int, shift ShiftFraction) model.Time {
	if k == 0 {
		k = p.N
	}
	u := shift.of(p.U)
	return model.Time(int64(u) * int64(k-1) / int64(k))
}

// d1RealizedBound returns the bound the discretized construction actually
// witnesses: the span of the 1ns-truncated Step 2 shift vector,
// 2·⌊u'(k-1)/(2k)⌋ — within one time unit of the theorem's (1-1/k)u. The
// distinction matters when u'(k-1)/k is not an even integer: a premature
// tuning must sit below the span the adversary realizes, not the ideal
// bound, or it lands exactly on the boundary and escapes.
func d1RealizedBound(p model.Params, k int, shift ShiftFraction) model.Time {
	if k == 0 {
		k = p.N
	}
	u := shift.of(p.U)
	return 2 * model.Time(int64(u)*int64(k-1)/int64(2*k))
}

// d1SpecFor builds the D.1 spec for an arbitrary mutator-latency function.
func d1SpecFor(name string, k int, latency func(model.Params) model.Time, shift ShiftFraction) engine.AdversarySpec {
	return engine.AdversarySpec{
		Name:     name,
		DataType: types.NewRegister(-1),
		Tuning: func(p model.Params) core.Tuning {
			t := core.Tuning{}
			if l := latency(p); l < p.Epsilon {
				t.MutatorResponse = override(l)
			}
			return t
		},
		Bound:        func(p model.Params) model.Time { return d1RealizedBound(p, k, shift) },
		WitnessKinds: []spec.OpKind{types.OpWrite},
		Runs: func(p model.Params) ([]engine.AdversaryRun, error) {
			return d1Runs(p, k, shift)
		},
	}
}

// d1Runs generates the [R1, R2] family: R1 runs all k writers at real time
// t with zero offsets over the ring delays; R2 is the standard shift of R1
// by the Step 2 vector, scaled by the shift fraction. Each run ends with a
// read well after quiescence that exposes the final register value.
func d1Runs(p model.Params, k int, shift ShiftFraction) ([]engine.AdversaryRun, error) {
	if k == 0 {
		k = p.N
	}
	if k < 2 || k > p.N {
		return nil, fmt.Errorf("adversary: Theorem D.1 needs 2 ≤ k ≤ n, got k=%d n=%d", k, p.N)
	}
	if want := d1RealizedBound(p, k, shift); p.Epsilon < want {
		return nil, fmt.Errorf("adversary: ε=%s < (1-1/k)u=%s; shifted run inadmissible", p.Epsilon, want)
	}
	base := d1BaseDelays(p, k)
	// Algorithm 1 breaks equal-clock timestamp ties by process id, so the
	// write ordered last is the one at the largest participating id.
	z := k - 1
	xs := d1Shift(k, z, shift.of(p.U))
	// Idle processes are not shifted (x_l = 0 in the proof's Step 2).
	xs = append(xs, make([]model.Time, p.N-k)...)
	t := 4 * p.D

	sched := func(times []model.Time) []workload.Invocation {
		var invs []workload.Invocation
		for i := 0; i < k; i++ {
			invs = append(invs, workload.Invocation{At: times[i], Proc: model.ProcessID(i), Kind: types.OpWrite, Arg: i})
		}
		// A read well after every write has settled exposes the final value.
		invs = append(invs, workload.Invocation{At: t + 4*p.D, Proc: 0, Kind: types.OpRead})
		return invs
	}

	shifted := make([]model.Time, k)
	offs := make([]model.Time, p.N)
	for i := 0; i < k; i++ {
		shifted[i] = t + xs[i]
	}
	for i := range offs {
		offs[i] = -xs[i]
	}
	return []engine.AdversaryRun{
		{
			Name:         "R1",
			ClockOffsets: make([]model.Time, p.N),
			Delay:        engine.DelaySpec{Label: "d1", Policy: matrixPolicy(sim.MatrixDelay{M: base})},
			Schedule:     sched(uniformTimes(k, t)),
		},
		{
			Name:         "R2",
			ClockOffsets: offs,
			Delay:        engine.DelaySpec{Label: "d1", Policy: matrixPolicy(sim.MatrixDelay{M: shiftDelays(base, xs)})},
			Schedule:     sched(shifted),
		},
	}, nil
}

// --- Theorem E.1 ----------------------------------------------------------

// E1Spec returns the Theorem E.1 adversary as an engine spec: a
// non-overwriting pure mutator (enqueue) paired with a pure accessor (peek)
// against the d + min{ε,u,d/3} lower bound on |OP| + |AOP|, at X = 0. The
// premature variant acknowledges the mutator immediately, so the accessor's
// ε-shifted timestamp horizon — the exact mechanism the proof's Step 2
// shift realizes — excludes the completed mutator; shrinking the shift to
// zero removes the violation.
func E1Spec(correct bool, shift ShiftFraction) engine.AdversarySpec {
	name := "e1"
	lm := func(p model.Params) model.Time { return 0 }
	if correct {
		name += ":correct"
		lm = func(p model.Params) model.Time { return p.Epsilon }
	} else {
		name += ":premature"
	}
	as := e1SpecFor(name, types.NewQueue(), types.OpEnqueue, types.OpPeek, "x", nil,
		func(model.Params) model.Time { return 0 }, lm, shift)
	as.RequireLinearizable = correct
	return as
}

// E1DictSpec is E1Spec instantiated on a dictionary: put("k", "x") is the
// non-overwriting pure mutator and dict-get("k") the pure accessor.
func E1DictSpec(correct bool, shift ShiftFraction) engine.AdversarySpec {
	name := "e1-dict"
	lm := func(p model.Params) model.Time { return 0 }
	if correct {
		name += ":correct"
		lm = func(p model.Params) model.Time { return p.Epsilon }
	} else {
		name += ":premature"
	}
	as := e1SpecFor(name, types.NewDict(), types.OpPut, types.OpDictGet,
		types.KV{Key: "k", Value: "x"}, "k",
		func(model.Params) model.Time { return 0 }, lm, shift)
	as.RequireLinearizable = correct
	return as
}

// e1SpecFor builds the E.1 spec for an arbitrary object instantiation and
// (X, mutator-latency) functions. The accessor's clock runs the (scaled)
// shift behind the mutator's; delays are slowest-admissible; the accessor
// is invoked strictly after the mutator's (possibly premature) ack, and a
// later observer double-checks convergence.
func e1SpecFor(name string, dt spec.DataType, mutKind, accKind spec.OpKind, mutArg, accArg spec.Value,
	xf, lmf func(model.Params) model.Time, shift ShiftFraction) engine.AdversarySpec {
	return engine.AdversarySpec{
		Name:     name,
		DataType: dt,
		X:        xf,
		Tuning: func(p model.Params) core.Tuning {
			t := core.Tuning{}
			if lm := lmf(p); lm < p.Epsilon+xf(p) {
				t.MutatorResponse = override(lm)
			}
			return t
		},
		Bound: func(p model.Params) model.Time {
			return p.D + model.MinOf3(shift.of(p.Epsilon), p.U, p.D/3)
		},
		WitnessKinds: []spec.OpKind{mutKind, accKind},
		PairWitness:  true,
		Runs: func(p model.Params) ([]engine.AdversaryRun, error) {
			if p.N < 3 {
				return nil, fmt.Errorf("adversary: Theorem E.1 needs n ≥ 3, got %d", p.N)
			}
			offsets := make([]model.Time, p.N)
			offsets[0] = -shift.of(p.Epsilon) // accessor's clock runs behind the mutator's
			t := 4 * p.D
			lm := lmf(p)
			return []engine.AdversaryRun{{
				Name:         "R",
				ClockOffsets: offsets,
				Delay:        engine.DelaySpec{Mode: engine.DelayWorst}, // slowest admissible delays
				Schedule: []workload.Invocation{
					// OP: p_1 mutates; it responds at t + lm.
					{At: t, Proc: 1, Kind: mutKind, Arg: mutArg},
					// AOP: p_0 accesses strictly after the mutator's
					// response, so any legal permutation must order the
					// mutator first.
					{At: t + lm + 1, Proc: 0, Kind: accKind, Arg: accArg},
					// A later observer at p_2 double-checks convergence.
					{At: t + 6*p.D, Proc: 2, Kind: accKind, Arg: accArg},
				},
			}}, nil
		},
	}
}

// --- Registry -------------------------------------------------------------

// SpecNames lists the bundled adversary constructions, for flags.
func SpecNames() []string { return []string{"fig1", "c1", "c1-queue", "d1", "e1", "e1-dict"} }

// SpecByName resolves a bundled adversary construction by name. correct
// selects the proven-correct tuning instead of the premature one; shift
// scales the construction's clock-shift magnitude.
func SpecByName(name string, correct bool, shift ShiftFraction) (engine.AdversarySpec, error) {
	switch name {
	case "fig1":
		return Figure1Spec(!correct), nil
	case "c1":
		return C1Spec(false, correct, shift), nil
	case "c1-queue":
		return C1Spec(true, correct, shift), nil
	case "d1":
		return D1Spec(0, correct, shift), nil
	case "e1":
		return E1Spec(correct, shift), nil
	case "e1-dict":
		return E1DictSpec(correct, shift), nil
	default:
		return engine.AdversarySpec{}, fmt.Errorf("adversary: unknown construction %q (want %v)", name, SpecNames())
	}
}
