// Package adversary makes the paper's lower-bound proofs executable. For
// each theorem it declares the exact adversarial runs of the proof — delay
// matrices, clock assignments, and invocation schedules — as an
// engine.AdversarySpec whose run family expands into ordinary engine
// scenarios, then drives a deliberately "premature" implementation
// (Algorithm 1 with a wait timer shortened below the proved bound) and
// returns the resulting history for the linearizability checker to reject.
// Driving the correct implementation through the same scenario yields a
// linearizable history whose witness operation pays at least the bound,
// demonstrating tightness at the construction.
//
// Every construction executes through internal/engine grids: the spec
// builders (Figure1Spec, C1Spec, D1Spec, E1Spec) compose with Backend and
// Params for sweeps, and the theorem functions below are thin wrappers that
// expand a config-bound spec and convert engine Results back to Outcomes.
//
// Scenario inventory:
//
//   - Figure1: Chapter I's motivating example — a zero-latency replicated
//     register whose read misses a completed remote write.
//   - TheoremC1: the d+min{ε,u,d/3} bound for strongly immediately
//     non-self-commuting operations (run family R1/R2/R3, Figs. 6–9),
//     instantiated with read-modify-write and with dequeue.
//   - TheoremD1: the (1-1/k)u bound for eventually non-self-last-permuting
//     mutators (ring delays, Figs. 10–14), instantiated with write.
//   - TheoremE1: the d+min{ε,u,d/3} bound on |OP|+|AOP| for non-overwriting
//     pure mutators with a pure accessor (Figs. 15–17), instantiated with
//     enqueue+peek.
package adversary

import (
	"fmt"

	"timebounds/internal/check"
	"timebounds/internal/engine"
	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/runs"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

// Outcome reports one scenario execution.
type Outcome struct {
	// History is the recorded invocation/response history.
	History *history.History
	// Result is the linearizability verdict, taken from the engine's
	// check of the run. Only Linearizable is populated — re-run
	// check.Check on History for the witness order or search statistics.
	Result check.Result
	// WorstLatency is the maximum completed-operation latency observed for
	// the operations the scenario constrains.
	WorstLatency model.Time
	// Run is the recorded run (views + messages) for rendering/analysis.
	Run runs.Run
	// Witness is the engine's bound witness for the run.
	Witness engine.BoundWitness
}

// Linearizable is shorthand for Result.Linearizable.
func (o Outcome) Linearizable() bool { return o.Result.Linearizable }

// runSpec expands one adversary spec at cfg's parameter point and executes
// the whole family on the engine, converting each Result to an Outcome in
// family order. All wrappers in this package funnel through here — the
// engine grid is the only execution path.
func runSpec(as engine.AdversarySpec, b engine.Backend, p model.Params) ([]Outcome, error) {
	scs, err := as.Scenarios(b, p, 1)
	if err != nil {
		return nil, err
	}
	for i := range scs {
		scs[i].Trace = true
	}
	rep := engine.Run(scs)
	outs := make([]Outcome, 0, len(rep.Results))
	for _, res := range rep.Results {
		out, err := outcomeOf(res, as.WitnessKinds...)
		if err != nil {
			return nil, err
		}
		outs = append(outs, out)
	}
	return outs, nil
}

// outcomeOf converts one engine Result back into this package's Outcome
// surface. The linearizability verdict is the engine's own (the scenario
// ran with Verify set), so the Wing–Gong search — the profile-dominating
// cost of these runs — executes exactly once per history.
func outcomeOf(res engine.Result, kinds ...spec.OpKind) (Outcome, error) {
	if res.Err != "" {
		return Outcome{}, fmt.Errorf("adversary: %s", res.Err)
	}
	out := Outcome{History: res.History, Result: check.Result{Linearizable: res.Linearizable}}
	if len(kinds) == 0 {
		kinds = []spec.OpKind{""} // MaxLatency("") scans every kind
	}
	for _, k := range kinds {
		if l, ok := res.History.MaxLatency(k); ok && l > out.WorstLatency {
			out.WorstLatency = l
		}
	}
	if res.Run != nil {
		out.Run = *res.Run
	}
	if res.Witness != nil {
		out.Witness = *res.Witness
	}
	return out, nil
}

// M returns the proof's m = min{ε, u, d/3}.
func M(p model.Params) model.Time { return model.MinOf3(p.Epsilon, p.U, p.D/3) }

// --- Figure 1 -------------------------------------------------------------

// naiveRegister is the incorrect implementation of Fig. 1(a): every write
// responds immediately after a best-effort broadcast, every read returns
// the local copy immediately. Latency 0, linearizability broken.
type naiveRegister struct {
	value spec.Value
}

var _ sim.Process = (*naiveRegister)(nil)

type naiveWrite struct{ v spec.Value }

func (r *naiveRegister) OnInvoke(env sim.Env, id history.OpID, kind spec.OpKind, arg spec.Value) {
	switch kind {
	case types.OpWrite:
		r.value = arg
		env.Broadcast(naiveWrite{v: arg})
		env.Respond(id, nil)
	case types.OpRead:
		env.Respond(id, r.value)
	}
}

func (r *naiveRegister) OnMessage(_ sim.Env, _ model.ProcessID, payload any) {
	if m, ok := payload.(naiveWrite); ok {
		r.value = m.v
	}
}

func (r *naiveRegister) OnTimer(sim.Env, any) {}

// StateEncoding exposes the local copy for convergence checks.
func (r *naiveRegister) StateEncoding() string { return fmt.Sprintf("%v", r.value) }

// NaiveRegister returns the zero-latency register implementation of
// Fig. 1(a) as an engine backend, so Figure 1 runs through the same
// scenario machinery as every other construction.
func NaiveRegister() engine.Backend { return naiveBackend{} }

type naiveBackend struct{}

// Name implements engine.Backend.
func (naiveBackend) Name() string { return "naive-register" }

// Build implements engine.Backend.
func (naiveBackend) Build(cfg engine.BuildConfig) (engine.Instance, error) {
	simCfg := cfg.Sim
	simCfg.Params = cfg.Params
	procs := make([]sim.Process, cfg.Params.N)
	states := make([]interface{ StateEncoding() string }, cfg.Params.N)
	for i := range procs {
		r := &naiveRegister{value: 0}
		procs[i] = r
		states[i] = r
	}
	s, err := sim.New(simCfg, procs)
	if err != nil {
		return nil, err
	}
	return engine.NewSimInstance(s, cfg.DataType, states), nil
}

// Bound implements engine.Backend: the naive implementation claims zero
// latency for every class — the claim Figure 1 refutes.
func (naiveBackend) Bound(model.Params, model.Time, spec.OpClass) model.Time { return 0 }

// Figure1Spec returns Chapter I's motivating example as an engine spec:
// pi performs write(0) then write(1) back-to-back; after both complete, pj
// reads while the write(1) message is still in flight. The declared lower
// bound is one time unit — the figure's claim is exactly that zero-latency
// operations are infeasible — so the naive implementation must violate
// linearizability, while any correct backend driven through the same
// schedule pays a positive latency. naive selects the broken zero-latency
// backend; otherwise the spec composes with the backend of the grid.
func Figure1Spec(naive bool) engine.AdversarySpec {
	as := engine.AdversarySpec{
		Name:     "fig1",
		DataType: types.NewRegister(0),
		Bound:    func(model.Params) model.Time { return 1 },
		Runs: func(p model.Params) ([]engine.AdversaryRun, error) {
			t := p.D // start after an idle prefix
			return []engine.AdversaryRun{{
				Name:         "R",
				ClockOffsets: make([]model.Time, p.N),
				Delay:        engine.DelaySpec{Mode: engine.DelayWorst},
				Schedule: []workload.Invocation{
					{At: t, Proc: 0, Kind: types.OpWrite, Arg: 0},
					{At: t + 1, Proc: 0, Kind: types.OpWrite, Arg: 1},
					// pj reads after both writes completed (they respond
					// instantly) but before the write(1) message lands at
					// pj (t+1+d).
					{At: t + 2, Proc: 1, Kind: types.OpRead},
				},
			}}, nil
		},
	}
	if naive {
		as.Name = "fig1:naive"
		as.Backend = naiveBackend{}
	} else {
		as.Name = "fig1:correct"
		as.RequireLinearizable = true
	}
	return as
}

// Figure1 reproduces Fig. 1(a) against the naive zero-latency register via
// an engine grid. The returned outcome's Result.Linearizable is false.
func Figure1(p model.Params) (Outcome, error) {
	outs, err := runSpec(Figure1Spec(true), nil, p)
	if err != nil {
		return Outcome{}, err
	}
	return outs[0], nil
}
