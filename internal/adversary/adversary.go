// Package adversary makes the paper's lower-bound proofs executable. For
// each theorem it builds the exact adversarial runs of the proof — delay
// matrices, clock assignments, and invocation schedules — then drives a
// deliberately "premature" implementation (Algorithm 1 with a wait timer
// shortened below the proved bound) and returns the resulting history for
// the linearizability checker to reject. Driving the correct implementation
// through the same scenario yields a linearizable history, demonstrating
// tightness at the construction.
//
// Scenario inventory:
//
//   - Figure1: Chapter I's motivating example — a zero-latency replicated
//     register whose read misses a completed remote write.
//   - TheoremC1: the d+min{ε,u,d/3} bound for strongly immediately
//     non-self-commuting operations (run family R1/R2/R3, Figs. 6–9),
//     instantiated with read-modify-write and with dequeue.
//   - TheoremD1: the (1-1/k)u bound for eventually non-self-last-permuting
//     mutators (ring delays, Figs. 10–14), instantiated with write.
//   - TheoremE1: the d+min{ε,u,d/3} bound on |OP|+|AOP| for non-overwriting
//     pure mutators with a pure accessor (Figs. 15–17), instantiated with
//     enqueue+peek.
package adversary

import (
	"fmt"

	"timebounds/internal/check"
	"timebounds/internal/core"
	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/runs"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
	"timebounds/internal/types"
)

// Outcome reports one scenario execution.
type Outcome struct {
	// History is the recorded invocation/response history.
	History *history.History
	// Result is the linearizability verdict.
	Result check.Result
	// WorstLatency is the maximum completed-operation latency observed for
	// the operations the scenario constrains.
	WorstLatency model.Time
	// Run is the recorded run (views + messages) for rendering/analysis.
	Run runs.Run
}

// Linearizable is shorthand for Result.Linearizable.
func (o Outcome) Linearizable() bool { return o.Result.Linearizable }

// runCluster drives a cluster to quiescence and checks its history.
func runCluster(c *core.Cluster, horizon model.Time, kinds ...spec.OpKind) (Outcome, error) {
	if err := c.Run(horizon); err != nil {
		return Outcome{}, err
	}
	h := c.History()
	if !h.Complete() {
		return Outcome{}, fmt.Errorf("adversary: %d operations still pending", h.PendingCount())
	}
	out := Outcome{
		History: h,
		Result:  check.Check(c.DataType(), h),
		Run:     runs.FromSim(c.Simulator()),
	}
	for _, k := range kinds {
		if l, ok := h.MaxLatency(k); ok && l > out.WorstLatency {
			out.WorstLatency = l
		}
	}
	return out, nil
}

// M returns the proof's m = min{ε, u, d/3}.
func M(p model.Params) model.Time { return model.MinOf3(p.Epsilon, p.U, p.D/3) }

// --- Figure 1 -------------------------------------------------------------

// naiveRegister is the incorrect implementation of Fig. 1(a): every write
// responds immediately after a best-effort broadcast, every read returns
// the local copy immediately. Latency 0, linearizability broken.
type naiveRegister struct {
	value spec.Value
}

var _ sim.Process = (*naiveRegister)(nil)

type naiveWrite struct{ v spec.Value }

func (r *naiveRegister) OnInvoke(env sim.Env, id history.OpID, kind spec.OpKind, arg spec.Value) {
	switch kind {
	case types.OpWrite:
		r.value = arg
		env.Broadcast(naiveWrite{v: arg})
		env.Respond(id, nil)
	case types.OpRead:
		env.Respond(id, r.value)
	}
}

func (r *naiveRegister) OnMessage(_ sim.Env, _ model.ProcessID, payload any) {
	if m, ok := payload.(naiveWrite); ok {
		r.value = m.v
	}
}

func (r *naiveRegister) OnTimer(sim.Env, any) {}

// Figure1 reproduces Fig. 1(a): pi performs write(0) then write(1)
// back-to-back; after both complete, pj reads — but the write(1) message is
// still in flight, so the zero-latency read returns 0, violating
// linearizability. The returned outcome's Result.Linearizable is false.
func Figure1(p model.Params) (Outcome, error) {
	dt := types.NewRegister(0)
	procs := []sim.Process{}
	regs := make([]*naiveRegister, p.N)
	for i := range regs {
		regs[i] = &naiveRegister{value: 0}
		procs = append(procs, regs[i])
	}
	s, err := sim.New(sim.Config{Params: p, Delay: sim.FixedDelay(p.D), StrictDelays: true}, procs)
	if err != nil {
		return Outcome{}, err
	}
	t := p.D // start after an idle prefix
	s.Invoke(t, 0, types.OpWrite, 0)
	s.Invoke(t+1, 0, types.OpWrite, 1)
	// pj reads after both writes completed (they respond instantly) but
	// before the write(1) message lands at pj (t+1+d).
	s.Invoke(t+2, 1, types.OpRead, nil)
	if err := s.Run(model.Time(100) * p.D); err != nil {
		return Outcome{}, err
	}
	h := s.History()
	out := Outcome{History: h, Result: check.Check(dt, h), Run: runs.FromSim(s)}
	if l, ok := h.MaxLatency(""); ok {
		out.WorstLatency = l
	}
	return out, nil
}
