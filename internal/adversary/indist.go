package adversary

import (
	"fmt"

	"timebounds/internal/engine"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

// IndistResult reports the indistinguishability comparison at the heart of
// Theorem C.1's Step 1 (runs R1 vs R'1) and Step 4 (R3 vs R”'3): in the
// concurrent run, the process that cannot have heard about the other
// operation before responding must return exactly what it returns when
// running alone.
type IndistResult struct {
	// ConcurrentRet is the focal operation's return value in the
	// two-operation run.
	ConcurrentRet spec.Value
	// SoloRet is the same operation's return value in the reference run
	// where it executes alone.
	SoloRet spec.Value
	// OtherRet is the other (non-focal) operation's return value in the
	// concurrent run.
	OtherRet spec.Value
	// OtherSoloRet is the other operation's return value when IT runs
	// alone.
	OtherSoloRet spec.Value
}

// FocalMatchesSolo reports Step 1.1's conclusion: op′ = op (the focal
// process cannot distinguish the runs before responding).
func (r IndistResult) FocalMatchesSolo() bool {
	return spec.ValueEqual(r.ConcurrentRet, r.SoloRet)
}

// OtherDiffersFromSolo reports Step 1.2's conclusion: op′2 ≠ op2 (the
// other operation must NOT return its solo value, else both orders of a
// strongly non-self-commuting pair would be illegal).
func (r IndistResult) OtherDiffersFromSolo() bool {
	return !spec.ValueEqual(r.OtherRet, r.OtherSoloRet)
}

// TheoremC1Indistinguishability executes run R1 of the Theorem C.1 family
// together with its single-operation reference run R'1 (same delays, same
// clocks, only p_i's operation) and the symmetric reference for p_j — a
// three-scenario engine grid on the correct Algorithm 1 implementation —
// and returns the Step 1 comparison.
//
// The focal process in R1 is p_i: d_{j,i} = d and op2 starts m after op1,
// so p_i cannot learn of op2 until t+d+m, after its response (Fig. 7).
func TheoremC1Indistinguishability(p model.Params, useQueue bool) (IndistResult, error) {
	family := c1Family(p, 8*p.D, M(p))
	r1 := family[0]

	// Scenario order: [concurrent, R'1 (only p_i), only p_j].
	scs := []engine.Scenario{
		c1IndistScenario(p, useQueue, r1, true, true),
		c1IndistScenario(p, useQueue, r1, true, false),
		c1IndistScenario(p, useQueue, r1, false, true),
	}
	rep := engine.Run(scs)
	if err := rep.Err(); err != nil {
		return IndistResult{}, err
	}
	var kind spec.OpKind = types.OpRMW
	if useQueue {
		kind = types.OpDequeue
	}
	focalRet, err := opReturn(rep.Results[0], kind, 0)
	if err != nil {
		return IndistResult{}, fmt.Errorf("R1 focal: %w", err)
	}
	soloRet, err := opReturn(rep.Results[1], kind, 0)
	if err != nil {
		return IndistResult{}, fmt.Errorf("R'1: %w", err)
	}
	otherRet, err := opReturn(rep.Results[0], kind, 1)
	if err != nil {
		return IndistResult{}, fmt.Errorf("R1 other: %w", err)
	}
	otherSolo, err := opReturn(rep.Results[2], kind, 1)
	if err != nil {
		return IndistResult{}, fmt.Errorf("R1 other solo: %w", err)
	}
	return IndistResult{
		ConcurrentRet: focalRet,
		SoloRet:       soloRet,
		OtherRet:      otherRet,
		OtherSoloRet:  otherSolo,
	}, nil
}

// c1IndistScenario builds one member of the indistinguishability grid: run
// R1's delays and clocks on the correct algorithm, optionally suppressing
// either operation.
func c1IndistScenario(p model.Params, useQueue bool, r c1Run, withI, withJ bool) engine.Scenario {
	var dt spec.DataType = types.NewRMWRegister(0)
	if useQueue {
		dt = types.NewQueue()
	}
	var invs []workload.Invocation
	if useQueue {
		invs = append(invs, workload.Invocation{At: 0, Proc: 2, Kind: types.OpEnqueue, Arg: "X"})
		if withI {
			invs = append(invs, workload.Invocation{At: r.invokeI, Proc: 0, Kind: types.OpDequeue})
		}
		if withJ {
			invs = append(invs, workload.Invocation{At: r.invokeJ, Proc: 1, Kind: types.OpDequeue})
		}
	} else {
		if withI {
			invs = append(invs, workload.Invocation{At: r.invokeI, Proc: 0, Kind: types.OpRMW, Arg: 1})
		}
		if withJ {
			invs = append(invs, workload.Invocation{At: r.invokeJ, Proc: 1, Kind: types.OpRMW, Arg: 2})
		}
	}
	return engine.Scenario{
		Name:         fmt.Sprintf("indist/%s/withI=%v,withJ=%v", r.name, withI, withJ),
		Backend:      engine.Algorithm1{},
		DataType:     dt,
		Params:       p,
		ClockOffsets: r.offsets,
		Delay:        engine.DelaySpec{Label: "c1-indist", Policy: matrixPolicy(r.delays)},
		Workload:     workload.Spec{Name: r.name, Explicit: invs},
	}
}

// opReturn extracts the return value of the operation of the given kind
// invoked by process who from a finished scenario result.
func opReturn(res engine.Result, kind spec.OpKind, who model.ProcessID) (spec.Value, error) {
	for _, op := range res.History.Ops() {
		if op.Proc == who && op.Kind == kind {
			if op.Pending {
				return nil, fmt.Errorf("adversary: op at %s still pending", who)
			}
			return op.Ret, nil
		}
	}
	return nil, fmt.Errorf("adversary: no %s operation at %s", kind, who)
}
