package adversary

import (
	"fmt"

	"timebounds/internal/core"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
	"timebounds/internal/types"
)

// IndistResult reports the indistinguishability comparison at the heart of
// Theorem C.1's Step 1 (runs R1 vs R'1) and Step 4 (R3 vs R”'3): in the
// concurrent run, the process that cannot have heard about the other
// operation before responding must return exactly what it returns when
// running alone.
type IndistResult struct {
	// ConcurrentRet is the focal operation's return value in the
	// two-operation run.
	ConcurrentRet spec.Value
	// SoloRet is the same operation's return value in the reference run
	// where it executes alone.
	SoloRet spec.Value
	// OtherRet is the other (non-focal) operation's return value in the
	// concurrent run.
	OtherRet spec.Value
	// OtherSoloRet is the other operation's return value when IT runs
	// alone.
	OtherSoloRet spec.Value
}

// FocalMatchesSolo reports Step 1.1's conclusion: op′ = op (the focal
// process cannot distinguish the runs before responding).
func (r IndistResult) FocalMatchesSolo() bool {
	return spec.ValueEqual(r.ConcurrentRet, r.SoloRet)
}

// OtherDiffersFromSolo reports Step 1.2's conclusion: op′2 ≠ op2 (the
// other operation must NOT return its solo value, else both orders of a
// strongly non-self-commuting pair would be illegal).
func (r IndistResult) OtherDiffersFromSolo() bool {
	return !spec.ValueEqual(r.OtherRet, r.OtherSoloRet)
}

// TheoremC1Indistinguishability executes run R1 of the Theorem C.1 family
// together with its single-operation reference run R'1 (same delays, same
// clocks, only p_i's operation) and the symmetric pair for p_j, returning
// the Step 1 comparison for the correct Algorithm 1 implementation.
//
// The focal process in R1 is p_i: d_{j,i} = d and op2 starts m after op1,
// so p_i cannot learn of op2 until t+d+m, after its response (Fig. 7).
func TheoremC1Indistinguishability(p model.Params, useQueue bool) (IndistResult, error) {
	family := c1Family(p, 8*p.D)
	r1 := family[0]

	focalRet, err := c1OpReturn(p, useQueue, r1, true, true, 0)
	if err != nil {
		return IndistResult{}, fmt.Errorf("R1 focal: %w", err)
	}
	soloRet, err := c1OpReturn(p, useQueue, r1, true, false, 0)
	if err != nil {
		return IndistResult{}, fmt.Errorf("R'1: %w", err)
	}
	otherRet, err := c1OpReturn(p, useQueue, r1, true, true, 1)
	if err != nil {
		return IndistResult{}, fmt.Errorf("R1 other: %w", err)
	}
	otherSolo, err := c1OpReturn(p, useQueue, r1, false, true, 1)
	if err != nil {
		return IndistResult{}, fmt.Errorf("R1 other solo: %w", err)
	}
	return IndistResult{
		ConcurrentRet: focalRet,
		SoloRet:       soloRet,
		OtherRet:      otherRet,
		OtherSoloRet:  otherSolo,
	}, nil
}

// c1OpReturn runs one member of the C.1 family with the correct algorithm,
// optionally suppressing either operation, and returns the return value of
// the operation invoked by process `who` (0 = p_i, 1 = p_j).
func c1OpReturn(p model.Params, useQueue bool, r c1Run, withI, withJ bool, who model.ProcessID) (spec.Value, error) {
	var dt spec.DataType
	var opKind spec.OpKind
	if useQueue {
		dt = types.NewQueue()
		opKind = types.OpDequeue
	} else {
		dt = types.NewRMWRegister(0)
		opKind = types.OpRMW
	}
	cluster, err := core.NewCluster(
		core.Config{Params: p},
		dt,
		sim.Config{ClockOffsets: r.offsets, Delay: r.delays, StrictDelays: true},
	)
	if err != nil {
		return nil, err
	}
	if useQueue {
		cluster.Invoke(0, 2, types.OpEnqueue, "X")
	}
	argI, argJ := spec.Value(1), spec.Value(2)
	if useQueue {
		argI, argJ = nil, nil
	}
	if withI {
		cluster.Invoke(r.invokeI, 0, opKind, argI)
	}
	if withJ {
		cluster.Invoke(r.invokeJ, 1, opKind, argJ)
	}
	if err := cluster.Run(100 * p.D); err != nil {
		return nil, err
	}
	for _, op := range cluster.History().Ops() {
		if op.Proc == who && op.Kind == opKind {
			if op.Pending {
				return nil, fmt.Errorf("adversary: op at %s still pending", who)
			}
			return op.Ret, nil
		}
	}
	return nil, fmt.Errorf("adversary: no %s operation at %s", opKind, who)
}
