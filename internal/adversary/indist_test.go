package adversary

import "testing"

func TestC1IndistinguishabilityStep1(t *testing.T) {
	// Step 1.1: in R1 the focal operation (p_i's, which cannot hear about
	// p_j's before responding) returns exactly its solo-run value.
	// Step 1.2: p_j's operation must NOT return its solo value — the two
	// instances of a strongly immediately non-self-commuting type cannot
	// both behave as if alone.
	p := params(3)
	for _, useQueue := range []bool{false, true} {
		res, err := TheoremC1Indistinguishability(p, useQueue)
		if err != nil {
			t.Fatalf("queue=%v: %v", useQueue, err)
		}
		if !res.FocalMatchesSolo() {
			t.Errorf("queue=%v: focal op returned %v concurrent vs %v solo; "+
				"Step 1.1 indistinguishability broken", useQueue, res.ConcurrentRet, res.SoloRet)
		}
		if !res.OtherDiffersFromSolo() {
			t.Errorf("queue=%v: other op returned its solo value %v concurrently; "+
				"Step 1.2 requires op′2 ≠ op2", useQueue, res.OtherRet)
		}
	}
}

func TestC1IndistinguishabilityValues(t *testing.T) {
	// Concrete values for the queue instantiation: solo dequeues take "X";
	// concurrently p_i keeps "X" (its timestamp orders first) and p_j gets
	// nil.
	p := params(3)
	res, err := TheoremC1Indistinguishability(p, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.SoloRet != "X" || res.ConcurrentRet != "X" {
		t.Errorf("focal: solo=%v concurrent=%v, want X/X", res.SoloRet, res.ConcurrentRet)
	}
	if res.OtherSoloRet != "X" {
		t.Errorf("other solo = %v, want X", res.OtherSoloRet)
	}
	if res.OtherRet != nil {
		t.Errorf("other concurrent = %v, want nil (element already taken)", res.OtherRet)
	}
}
