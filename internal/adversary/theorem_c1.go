package adversary

import (
	"timebounds/internal/core"
	"timebounds/internal/engine"
	"timebounds/internal/model"
	"timebounds/internal/sim"
)

// C1Config selects the strongly immediately non-self-commuting operation
// used to instantiate Theorem C.1.
type C1Config struct {
	// Params are the system parameters; Params.N must be ≥ 3.
	Params model.Params
	// OOPLatency is the target worst-case latency of the premature OOP
	// implementation. The theorem proves any value < d + min{ε,u,d/3}
	// yields a violation in one of the constructed runs; the proven-correct
	// algorithm achieves d+ε.
	OOPLatency model.Time
	// UseQueue instantiates the scenario with dequeue on a queue instead of
	// read-modify-write on a register.
	UseQueue bool
}

// c1Runs enumerates the proof's admissible run family. pi = process 0,
// pj = process 1, pk = process 2 (Fig. 6). Each run fixes a pairwise
// uniform delay matrix, a clock assignment, and the two invocation times.
type c1Run struct {
	// name labels the run ("R1", "R2", "R3") for diagnostics.
	name string
	// offsets are the clock offsets c_p.
	offsets []model.Time
	// delays is the pairwise-uniform delay matrix.
	delays sim.MatrixDelay
	// invokeI and invokeJ are the real invocation times of op1 (at pi) and
	// op2 (at pj); a negative invokeJ means op2 is not invoked (runs R'1,
	// R'''3 execute a single operation).
	invokeI, invokeJ model.Time
}

// c1Family builds the R1, R2, R3 run family of Theorem C.1's proof
// (Steps 1–3, Figs. 7–9) with shift magnitude m (the full proof shift is
// m = min{ε,u,d/3}; adversary specs may scale it down); t is the common
// base time.
//
//	R1: pj's clock is m later (c_j = -m); delays d everywhere except
//	    d_{k,i} = d_{j,k} = d-m. op1 at real t, op2 at real t+m (both at
//	    local clock T).
//	R2: shift(R1, x_j = -m) + chop + extend: clocks equal; both ops at
//	    real t; the invalid d+m delay from pj to pi is re-extended to d-m.
//	R3: shift(R2, x_i = +m) + chop + extend: c_i = -m; op1 at real t+m,
//	    op2 at real t; the invalid d-2m delay from pi to pj re-extended
//	    to d.
func c1Family(p model.Params, t, m model.Time) []c1Run {
	d := p.D
	mk := func(name string, cI, cJ, cK model.Time, dm [6]model.Time, tI, tJ model.Time) c1Run {
		// dm order: i→j, j→i, i→k, k→i, j→k, k→j.
		mat := sim.NewMatrixDelay(p.N, d)
		mat.Set(0, 1, dm[0]).Set(1, 0, dm[1]).Set(0, 2, dm[2])
		mat.Set(2, 0, dm[3]).Set(1, 2, dm[4]).Set(2, 1, dm[5])
		offsets := make([]model.Time, p.N)
		offsets[0], offsets[1], offsets[2] = cI, cJ, cK
		return c1Run{name: name, offsets: offsets, delays: mat, invokeI: tI, invokeJ: tJ}
	}
	return []c1Run{
		// R1 (Fig. 7): d_{i,k}=d_{i,j}=d_{j,i}=d_{k,j}=d, d_{k,i}=d_{j,k}=d-m.
		mk("R1", 0, -m, 0, [6]model.Time{d, d, d, d - m, d - m, d}, t, t+m),
		// R2 (Fig. 8): both ops at t; pj's messages re-extended to d-m.
		mk("R2", 0, 0, 0, [6]model.Time{d - m, d - m, d, d - m, d - m, d - m}, t, t),
		// R3 (Fig. 9): op1 at t+m; pi's messages to pj re-extended to d.
		mk("R3", -m, 0, 0, [6]model.Time{d, d, d - m, d, d - m, d - m}, t+m, t),
	}
}

// TheoremC1 executes the Theorem C.1 run family — as an engine grid —
// against an implementation whose OOP latency is cfg.OOPLatency and returns
// the outcome of every run. If cfg.OOPLatency < d+m, at least one outcome
// is non-linearizable; if the latency budget respects the bound (e.g. the
// d+ε tuning of the correct algorithm), all outcomes are linearizable.
func TheoremC1(cfg C1Config) ([]Outcome, error) {
	as := c1SpecFor("c1", cfg.UseQueue,
		func(model.Params) model.Time { return cfg.OOPLatency }, ShiftFraction{})
	return runSpec(as, engine.Algorithm1{}, cfg.Params)
}

// c1Tuning builds a premature tuning whose own-operation OOP response time
// is target: the self-insert happens immediately and the execute wait is
// the full target. (The correct algorithm uses d-u and u+ε, totalling d+ε.)
func c1Tuning(p model.Params, target model.Time) core.Tuning {
	if target >= p.D+p.Epsilon {
		return core.Tuning{} // proven-correct defaults
	}
	return core.Tuning{
		SelfAddDelay: core.OverrideTime{Override: true, Value: 0},
		ExecuteWait:  core.OverrideTime{Override: true, Value: target},
	}
}
