package adversary

import (
	"timebounds/internal/engine"
	"timebounds/internal/model"
	"timebounds/internal/types"
)

// E1Config configures the Theorem E.1 scenario: a non-overwriting pure
// mutator (enqueue) paired with a pure accessor (peek) against the
// d + min{ε,u,d/3} lower bound on |OP| + |AOP|.
type E1Config struct {
	// Params are the system parameters; Params.N must be ≥ 3.
	Params model.Params
	// X is Algorithm 1's tradeoff parameter; the accessor responds in
	// d+ε-X as usual.
	X model.Time
	// MutatorLatency is the pure-mutator response time under test. The
	// pair latency is MutatorLatency + (d+ε-X); when it is below
	// d + min{ε,u,d/3} the construction produces a violation.
	MutatorLatency model.Time
}

// PairLatency returns the combined |OP| + |AOP| latency the configuration
// realizes.
func (c E1Config) PairLatency() model.Time {
	return c.MutatorLatency + (c.Params.D + c.Params.Epsilon - c.X)
}

// TheoremE1 executes the Theorem E.1 construction (Figs. 15–17) as an
// engine grid, instantiated with enqueue and peek on a queue. Process p_j
// enqueues at time t; the accessor process p_i — whose clock runs ε behind,
// the adversarial extreme the proof's Step 2 shift realizes — peeks
// immediately after the enqueue's response. Real time forces the peek to
// observe the enqueue, but a pair faster than the bound responds off a
// local copy whose timestamp horizon excludes it, returning an
// empty-queue nil.
func TheoremE1(cfg E1Config) (Outcome, error) {
	as := e1SpecFor("e1", types.NewQueue(), types.OpEnqueue, types.OpPeek, "x", nil,
		func(model.Params) model.Time { return cfg.X },
		func(model.Params) model.Time { return cfg.MutatorLatency },
		ShiftFraction{})
	outs, err := runSpec(as, engine.Algorithm1{}, cfg.Params)
	if err != nil {
		return Outcome{}, err
	}
	return outs[0], nil
}
