package adversary

import (
	"fmt"

	"timebounds/internal/core"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/types"
)

// E1Config configures the Theorem E.1 scenario: a non-overwriting pure
// mutator (enqueue) paired with a pure accessor (peek) against the
// d + min{ε,u,d/3} lower bound on |OP| + |AOP|.
type E1Config struct {
	// Params are the system parameters; Params.N must be ≥ 3.
	Params model.Params
	// X is Algorithm 1's tradeoff parameter; the accessor responds in
	// d+ε-X as usual.
	X model.Time
	// MutatorLatency is the pure-mutator response time under test. The
	// pair latency is MutatorLatency + (d+ε-X); when it is below
	// d + min{ε,u,d/3} the construction produces a violation.
	MutatorLatency model.Time
}

// PairLatency returns the combined |OP| + |AOP| latency the configuration
// realizes.
func (c E1Config) PairLatency() model.Time {
	return c.MutatorLatency + (c.Params.D + c.Params.Epsilon - c.X)
}

// TheoremE1 executes the Theorem E.1 construction (Figs. 15–17),
// instantiated with enqueue and peek on a queue. Process p_j enqueues at
// time t; the accessor process p_i — whose clock runs ε behind, the
// adversarial extreme the proof's Step 2 shift realizes — peeks immediately
// after the enqueue's response. Real time forces the peek to observe the
// enqueue, but a pair faster than the bound responds off a local copy whose
// timestamp horizon excludes it, returning an empty-queue nil.
func TheoremE1(cfg E1Config) (Outcome, error) {
	p := cfg.Params
	if p.N < 3 {
		return Outcome{}, fmt.Errorf("adversary: Theorem E.1 needs n ≥ 3, got %d", p.N)
	}
	tuning := core.Tuning{}
	if cfg.MutatorLatency < p.Epsilon+cfg.X {
		tuning.MutatorResponse = core.OverrideTime{Override: true, Value: cfg.MutatorLatency}
	}
	offsets := make([]model.Time, p.N)
	offsets[0] = -p.Epsilon // accessor's clock runs ε behind the mutator's

	cluster, err := core.NewCluster(
		core.Config{Params: p, X: cfg.X, Tuning: tuning},
		types.NewQueue(),
		sim.Config{
			ClockOffsets: offsets,
			Delay:        sim.FixedDelay(p.D), // slowest admissible delays
			StrictDelays: true,
		},
	)
	if err != nil {
		return Outcome{}, err
	}
	t := 4 * p.D
	// OP: p_1 enqueues; it responds at t + MutatorLatency.
	cluster.Invoke(t, 1, types.OpEnqueue, "x")
	// AOP: p_0 peeks strictly after the enqueue's response, so any legal
	// permutation must place the enqueue first and the peek must return x.
	cluster.Invoke(t+cfg.MutatorLatency+1, 0, types.OpPeek, nil)
	// A later observer at p_2 double-checks convergence; it always sees x.
	cluster.Invoke(t+6*p.D, 2, types.OpPeek, nil)
	return runCluster(cluster, 100*p.D, types.OpEnqueue, types.OpPeek)
}
