package adversary

// Lower-bound witness regression tests: each theorem's adversary grid,
// run through the engine, must (a) under the correct tuning produce a
// witness operation whose latency meets the theoretical bound, (b) under
// the premature tuning catch the implementation with a linearizability
// violation somewhere in the run family, and (c) lose that violation when
// the adversary's clock shift is weakened below the premature tuning's
// threshold — the shift is exactly what powers the bound.

import (
	"testing"

	"timebounds/internal/core"
	"timebounds/internal/engine"
	"timebounds/internal/model"
)

// runFamily expands one spec at params(3) (or the given n) and returns the
// report plus its single family verdict.
func runFamily(t *testing.T, as engine.AdversarySpec, n int) (engine.Report, engine.FamilyWitness) {
	t.Helper()
	scs, err := as.Scenarios(nil, params(n), 1)
	if err != nil {
		t.Fatalf("%s: %v", as.Name, err)
	}
	rep := engine.Run(scs)
	fams := rep.WitnessFamilies()
	if len(fams) != 1 {
		t.Fatalf("%s: want 1 witness family, got %d", as.Name, len(fams))
	}
	return rep, fams[0]
}

func correctSpecs() []engine.AdversarySpec {
	return []engine.AdversarySpec{
		Figure1Spec(false),
		C1Spec(false, true, ShiftFraction{}),
		C1Spec(true, true, ShiftFraction{}),
		D1Spec(0, true, ShiftFraction{}),
		E1Spec(true, ShiftFraction{}),
		E1DictSpec(true, ShiftFraction{}),
	}
}

func prematureSpecs() []engine.AdversarySpec {
	return []engine.AdversarySpec{
		Figure1Spec(true),
		C1Spec(false, false, ShiftFraction{}),
		C1Spec(true, false, ShiftFraction{}),
		D1Spec(0, false, ShiftFraction{}),
		E1Spec(false, ShiftFraction{}),
		E1DictSpec(false, ShiftFraction{}),
	}
}

func TestCorrectTuningWitnessMeetsBound(t *testing.T) {
	// The correct implementation driven through every adversary family
	// must linearize everywhere and pay at least the theoretical lower
	// bound at the witness operation.
	for _, as := range correctSpecs() {
		rep, fam := runFamily(t, as, 3)
		if fam.Violated {
			t.Errorf("%s: correct tuning produced a violation", as.Name)
		}
		if fam.MaxLatency < fam.Bound {
			t.Errorf("%s: witness latency %s below lower bound %s",
				as.Name, fam.MaxLatency, fam.Bound)
		}
		for _, res := range rep.Results {
			if res.Witness == nil {
				t.Fatalf("%s: scenario %s has no BoundWitness", as.Name, res.Name)
			}
			if res.Err != "" {
				t.Errorf("%s: %s: %s", as.Name, res.Name, res.Err)
			}
		}
	}
}

func TestPrematureTuningViolatesSomewhereInFamily(t *testing.T) {
	// An implementation tuned below the bound must be caught: at least one
	// run of each family is non-linearizable — and the family verdict
	// still HOLDS, because a violation is the dichotomy's other horn.
	for _, as := range prematureSpecs() {
		_, fam := runFamily(t, as, 3)
		if !fam.Violated {
			t.Errorf("%s: premature tuning escaped the run family", as.Name)
		}
		if !fam.Holds() {
			t.Errorf("%s: family verdict should hold via the violation", as.Name)
		}
	}
}

func TestShrunkShiftMakesWitnessDisappear(t *testing.T) {
	// The same premature tunings against a weakened adversary: scaling the
	// clock shift below the tuning's threshold removes every violation (the
	// weakened family only witnesses the proportionally smaller bound).
	shrunk := []engine.AdversarySpec{
		C1Spec(false, false, Frac(0.25)),
		C1Spec(true, false, Frac(0.25)),
		D1Spec(0, false, Frac(0.25)),
		E1Spec(false, Frac(0)),
		E1DictSpec(false, Frac(0)),
	}
	for _, as := range shrunk {
		_, fam := runFamily(t, as, 3)
		if fam.Violated {
			t.Errorf("%s: violation persists below the shift threshold", as.Name)
		}
		if !fam.Holds() {
			t.Errorf("%s: weakened family should still hold (latency %s vs scaled bound %s)",
				as.Name, fam.MaxLatency, fam.Bound)
		}
	}
}

func TestCorrectTuningViolationFalsifiesFamily(t *testing.T) {
	// The regression detector: if the "proven-correct" algorithm ever
	// produces a violation in an adversary family (here simulated by
	// injecting a premature tuning into a RequireLinearizable spec), the
	// family must report FALSIFIED and Report.Err/OK must surface it —
	// a violation must not be accepted as the dichotomy's other horn.
	as := C1Spec(false, true, ShiftFraction{}) // correct: RequireLinearizable
	as.Tuning = func(p model.Params) core.Tuning {
		return c1Tuning(p, p.D+M(p)-1) // secretly premature
	}
	scs, err := as.Scenarios(nil, params(3), 1)
	if err != nil {
		t.Fatalf("Scenarios: %v", err)
	}
	rep := engine.Run(scs)
	fams := rep.WitnessFamilies()
	if len(fams) != 1 {
		t.Fatalf("want 1 family, got %d", len(fams))
	}
	if !fams[0].Violated {
		t.Fatal("test setup: injected premature tuning did not violate")
	}
	if fams[0].Holds() {
		t.Error("a violating correct-tuning family must be FALSIFIED")
	}
	if rep.Err() == nil || rep.OK() {
		t.Error("Report.Err/OK must surface a violating correct-tuning family")
	}
}

func TestWitnessScalesWithParameters(t *testing.T) {
	// Sweeping (ε, u, d) through the engine grid: the witnessed bound and
	// the correct tuning's witness latency track the theory at every point.
	var grid engine.Grid
	grid.Adversaries = []engine.AdversarySpec{
		C1Spec(false, true, ShiftFraction{}),
		D1Spec(0, true, ShiftFraction{}),
	}
	for _, n := range []int{3, 5} {
		for _, u := range []model.Time{2_000_000, 4_000_000, 8_000_000} {
			p := model.Params{N: n, D: 10_000_000, U: u}
			p.Epsilon = p.OptimalSkew()
			grid.Params = append(grid.Params, p)
		}
	}
	rep := engine.Run(grid.Scenarios())
	if err := rep.Err(); err != nil {
		t.Fatalf("grid: %v", err)
	}
	fams := rep.WitnessFamilies()
	if want := 2 * 6; len(fams) != want {
		t.Fatalf("want %d families, got %d", want, len(fams))
	}
	for _, f := range fams {
		if f.Violated {
			t.Errorf("%s: correct tuning violated", f.Family)
		}
		if f.MaxLatency < f.Bound {
			t.Errorf("%s: witness %s below bound %s", f.Family, f.MaxLatency, f.Bound)
		}
	}
}

func TestD1WitnessBoundMatchesTheoremAcrossK(t *testing.T) {
	// The witnessed (1-1/k)u bound with k writers in a larger cluster.
	for _, tc := range []struct{ k, n int }{{2, 4}, {3, 5}, {4, 6}} {
		as := D1Spec(tc.k, true, ShiftFraction{})
		_, fam := runFamily(t, as, tc.n)
		p := params(tc.n)
		want := model.Time(int64(p.U) * int64(tc.k-1) / int64(tc.k))
		if fam.Bound != want {
			t.Errorf("k=%d n=%d: witnessed bound %s, want (1-1/k)u = %s",
				tc.k, tc.n, fam.Bound, want)
		}
		if fam.MaxLatency < fam.Bound {
			t.Errorf("k=%d n=%d: witness %s below bound %s", tc.k, tc.n, fam.MaxLatency, fam.Bound)
		}
	}
}

func TestAdversaryGridSurfacesInadmissibleFamilies(t *testing.T) {
	// An inadmissible construction (ε too small for D.1's shifted run)
	// must surface as an error Result, not silently vanish from the grid.
	p := params(3)
	p.Epsilon = 1 // far below (1-1/k)u
	grid := engine.Grid{
		Adversaries: []engine.AdversarySpec{D1Spec(0, false, ShiftFraction{})},
		Params:      []model.Params{p},
	}
	rep := engine.Run(grid.Scenarios())
	if len(rep.Results) != 1 || rep.Results[0].Err == "" {
		t.Fatalf("want one error result for the inadmissible family, got %+v", rep.Results)
	}
}
