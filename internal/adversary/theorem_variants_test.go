package adversary

import (
	"testing"

	"timebounds/internal/model"
)

func TestTheoremD1WithFewerWritersThanProcesses(t *testing.T) {
	// The theorem is stated for any system of n ≥ k processes: the bound
	// drops to (1-1/k)u even when more processes exist. Run k writers in
	// larger clusters; idle processes carry the proof's d-u/2 delays.
	for _, tc := range []struct{ k, n int }{
		{2, 4}, {2, 6}, {3, 5}, {4, 6},
	} {
		p := params(tc.n)
		cfg := D1Config{Params: p, K: tc.k}
		bound := cfg.Bound()
		if want := model.Time(int64(p.U) * int64(tc.k-1) / int64(tc.k)); bound != want {
			t.Fatalf("k=%d: Bound()=%s, want %s", tc.k, bound, want)
		}

		cfg.MutatorLatency = bound - 1
		outs, err := TheoremD1(cfg)
		if err != nil {
			t.Fatalf("k=%d n=%d: %v", tc.k, tc.n, err)
		}
		if !outs[0].Linearizable() {
			t.Errorf("k=%d n=%d: R1 should pass", tc.k, tc.n)
		}
		if outs[1].Linearizable() {
			t.Errorf("k=%d n=%d: R2 should violate below (1-1/k)u=%s", tc.k, tc.n, bound)
		}

		cfg.MutatorLatency = bound
		outs, err = TheoremD1(cfg)
		if err != nil {
			t.Fatalf("k=%d n=%d at bound: %v", tc.k, tc.n, err)
		}
		for i, o := range outs {
			if !o.Linearizable() {
				t.Errorf("k=%d n=%d: run %d should pass at the bound", tc.k, tc.n, i)
			}
		}
	}
}

func TestTheoremD1RejectsBadK(t *testing.T) {
	p := params(3)
	if _, err := TheoremD1(D1Config{Params: p, K: 1}); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := TheoremD1(D1Config{Params: p, K: 4}); err == nil {
		t.Error("k>n accepted")
	}
}

func TestTheoremE1OnDictionary(t *testing.T) {
	// Theorem E.1 generalizes beyond queues: put on a dictionary is a
	// non-overwriting pure mutator that dict-get can order, so the same
	// premature pair produces a violation — here exercised through the
	// queue construction's dict twin.
	p := params(3)
	m := M(p)
	// Premature pair on the dict: same tuning shape as the queue scenario.
	out, err := theoremE1Dict(p, p.Epsilon+m/2, 0)
	if err != nil {
		t.Fatalf("premature: %v", err)
	}
	if out.Linearizable() {
		t.Fatalf("premature (put, get) pair should violate:\n%s", out.History)
	}
	// Correct Algorithm 1 pair on the identical scenario.
	out, err = theoremE1Dict(p, 0, p.Epsilon)
	if err != nil {
		t.Fatalf("correct: %v", err)
	}
	if !out.Linearizable() {
		t.Fatalf("correct (put, get) pair should pass:\n%s", out.History)
	}
}
