package adversary

import (
	"fmt"

	"timebounds/internal/model"
)

// Violates reports whether an implementation tuned to the given latency
// produces a non-linearizable history somewhere in a scenario's run family.
type Violates func(latency model.Time) (bool, error)

// FindThreshold locates the empirical latency threshold of a scenario by
// binary search: assuming violations are downward-closed (every latency
// below the true bound violates, every latency at or above it passes), it
// returns the smallest latency in (lo, hi] that does NOT violate. The
// theorems predict this equals the proved lower bound (up to the 1ns
// discretization of model time).
func FindThreshold(v Violates, lo, hi model.Time) (model.Time, error) {
	violLo, err := v(lo)
	if err != nil {
		return 0, err
	}
	if !violLo {
		return lo, nil // already passing at the bottom of the range
	}
	violHi, err := v(hi)
	if err != nil {
		return 0, err
	}
	if violHi {
		return 0, fmt.Errorf("adversary: still violating at hi=%s", hi)
	}
	// Invariant: violates(lo) && !violates(hi).
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		viol, err := v(mid)
		if err != nil {
			return 0, err
		}
		if viol {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

// C1Violates builds the Violates predicate for the Theorem C.1 scenario:
// the run family R1/R2/R3 with an OOP implementation tuned to the given
// latency.
func C1Violates(p model.Params, useQueue bool) Violates {
	return func(latency model.Time) (bool, error) {
		outs, err := TheoremC1(C1Config{Params: p, OOPLatency: latency, UseQueue: useQueue})
		if err != nil {
			return false, err
		}
		for _, o := range outs {
			if !o.Linearizable() {
				return true, nil
			}
		}
		return false, nil
	}
}

// D1Violates builds the Violates predicate for the Theorem D.1 scenario:
// the shifted ring run R2 with pure mutators tuned to the given latency.
func D1Violates(p model.Params) Violates {
	return func(latency model.Time) (bool, error) {
		outs, err := TheoremD1(D1Config{Params: p, MutatorLatency: latency})
		if err != nil {
			return false, err
		}
		for _, o := range outs {
			if !o.Linearizable() {
				return true, nil
			}
		}
		return false, nil
	}
}

// E1Violates builds the Violates predicate for the Theorem E.1 scenario
// with fixed X, varying the mutator's acknowledgment latency. For the
// Algorithm 1 implementation family this isolates how much of the ε+X
// mutator wait is load-bearing for the accessor's timestamp horizon.
func E1Violates(p model.Params, x model.Time) Violates {
	return func(latency model.Time) (bool, error) {
		out, err := TheoremE1(E1Config{Params: p, X: x, MutatorLatency: latency})
		if err != nil {
			return false, err
		}
		return !out.Linearizable(), nil
	}
}
