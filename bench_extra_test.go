// Extension benchmarks beyond the paper's tables/figures: the TOB folklore
// route, the empirical bound-threshold search, the wait-rule ablations, and
// the in-simulator clock synchronization round. See DESIGN.md §4 (E15–E18).
package timebounds_test

import (
	"testing"

	"timebounds/internal/adversary"
	"timebounds/internal/check"
	"timebounds/internal/clock"
	"timebounds/internal/core"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/tob"
	"timebounds/internal/types"
)

// BenchmarkTOBBaseline (E15) measures the sequencer-based total-order
// broadcast object: Chapter I's observation that TOB-over-point-to-point is
// no faster than the centralized 2d scheme.
func BenchmarkTOBBaseline(b *testing.B) {
	p := benchParams(3)
	var worst model.Time
	for i := 0; i < b.N; i++ {
		dt := types.NewRegister(0)
		procs := make([]sim.Process, p.N)
		for j := range procs {
			procs[j] = tob.NewObject(model.ProcessID(j), 0, dt)
		}
		s, err := sim.New(sim.Config{Params: p, Delay: sim.FixedDelay(p.D), StrictDelays: true}, procs)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < p.N; j++ {
			s.Invoke(model.Time(j)*p.D, model.ProcessID(j), types.OpWrite, j)
		}
		s.Invoke(10*p.D, 1, types.OpRead, nil)
		if err := s.Run(model.Infinity); err != nil {
			b.Fatal(err)
		}
		if res := check.Check(dt, s.History()); !res.Linearizable {
			b.Fatal("TOB history not linearizable")
		}
		worst, _ = s.History().MaxLatency("")
	}
	b.ReportMetric(ms(worst), "tob-worst-ms")
	b.ReportMetric(ms(2*p.D), "centralized-2d-ms")
}

// BenchmarkEmpiricalThresholds (E16) binary-searches the latency at which
// violations stop in each theorem's run family and reports it next to the
// proved bound.
func BenchmarkEmpiricalThresholds(b *testing.B) {
	p := benchParams(3)
	var c1, d1 model.Time
	for i := 0; i < b.N; i++ {
		var err error
		c1, err = adversary.FindThreshold(adversary.C1Violates(p, true), p.D/2, p.D+2*p.Epsilon)
		if err != nil {
			b.Fatal(err)
		}
		d1, err = adversary.FindThreshold(adversary.D1Violates(p), 0, p.U)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ms(c1), "c1-empirical-ms")
	b.ReportMetric(ms(p.D+model.MinOf3(p.Epsilon, p.U, p.D/3)), "c1-proved-ms")
	b.ReportMetric(ms(d1), "d1-empirical-ms")
	b.ReportMetric(ms(model.Time(int64(p.U)*int64(p.N-1)/int64(p.N))), "d1-proved-ms")
}

// BenchmarkAblations (E17) measures the violation rate with each wait rule
// removed in its adversarial scenario — every rule should show rate 1.0
// (always breaks) while the full algorithm shows 0.0.
func BenchmarkAblations(b *testing.B) {
	p := benchParams(3)
	scenarios := []struct {
		name   string
		tuning core.Tuning
	}{
		{"no-self-add-delay", core.Tuning{SelfAddDelay: core.OverrideTime{Override: true, Value: 0}}},
		{"full-algorithm", core.Tuning{}},
	}
	for _, sc := range scenarios {
		sc := sc
		b.Run(sc.name, func(b *testing.B) {
			violations := 0
			for i := 0; i < b.N; i++ {
				offsets := []model.Time{0, -p.Epsilon, 0}
				cluster, err := core.NewCluster(core.Config{Params: p, Tuning: sc.tuning},
					types.NewRMWRegister(0), sim.Config{
						ClockOffsets: offsets,
						Delay:        sim.FixedDelay(p.D),
						StrictDelays: true,
					})
				if err != nil {
					b.Fatal(err)
				}
				base := 4 * p.D
				cluster.Invoke(base, 0, types.OpRMW, 1)
				cluster.Invoke(base+p.Epsilon-1, 1, types.OpRMW, 2)
				if err := cluster.Run(model.Infinity); err != nil {
					b.Fatal(err)
				}
				if res := check.Check(cluster.DataType(), cluster.History()); !res.Linearizable {
					violations++
				}
			}
			b.ReportMetric(float64(violations)/float64(b.N), "violation-rate")
		})
	}
}

// BenchmarkClockSyncRound (E18) runs the in-simulator Lundelius–Lynch round
// against its worst-case adversary and reports achieved vs optimal skew.
func BenchmarkClockSyncRound(b *testing.B) {
	p := benchParams(4)
	adv := clock.WorstCaseDelay(p)
	delay := sim.FuncDelay(func(from, to model.ProcessID, _ model.Time, _ int) model.Time {
		return adv(from, to)
	})
	var skew model.Time
	for i := 0; i < b.N; i++ {
		out, err := clock.RunSyncRound(p, clock.Uniform(p.N), delay)
		if err != nil {
			b.Fatal(err)
		}
		skew = out.MaxSkew()
	}
	b.ReportMetric(ms(skew), "achieved-skew-ms")
	b.ReportMetric(ms(p.OptimalSkew()), "optimal-skew-ms")
}
