// Benchmark harness: one benchmark per evaluation artifact of the paper
// (see DESIGN.md §4 for the experiment index). Latency metrics are in
// *simulated* model time — reported via b.ReportMetric as "*-ms" custom
// metrics — since the paper's bounds are statements about model time, not
// wall-clock time; ns/op measures simulator throughput.
package timebounds_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"timebounds/internal/adversary"
	"timebounds/internal/bounds"
	"timebounds/internal/check"
	"timebounds/internal/experiments"
	"timebounds/internal/model"
	"timebounds/internal/runs"
	"timebounds/internal/sim"
	"timebounds/internal/types"
)

func benchParams(n int) model.Params { return experiments.DefaultParams(n) }

func ms(t model.Time) float64 { return float64(t) / float64(time.Millisecond) }

// benchmarkTable measures one of Tables I–IV (experiments E1–E4) and
// reports the worst-case latency of each row as a custom metric.
func benchmarkTable(b *testing.B, tbl bounds.Table) {
	b.Helper()
	p := benchParams(4)
	var measured map[string]model.Time
	for i := 0; i < b.N; i++ {
		var err error
		measured, _, err = experiments.MeasureTable(tbl, p, experiments.MeasureOptions{
			Seed: int64(i + 1), OpsPerProcess: 10, WorstCaseDelays: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range tbl.Rows {
		label := strings.ReplaceAll(row.Label, " ", "")
		b.ReportMetric(ms(measured[row.Label]), label+"-ms")
	}
}

// BenchmarkTableIRegister regenerates Table I (experiment E1).
func BenchmarkTableIRegister(b *testing.B) { benchmarkTable(b, bounds.TableI()) }

// BenchmarkTableIIQueue regenerates Table II (experiment E2).
func BenchmarkTableIIQueue(b *testing.B) { benchmarkTable(b, bounds.TableII()) }

// BenchmarkTableIIIStack regenerates Table III (experiment E3).
func BenchmarkTableIIIStack(b *testing.B) { benchmarkTable(b, bounds.TableIII()) }

// BenchmarkTableIVTree regenerates Table IV (experiment E4).
func BenchmarkTableIVTree(b *testing.B) { benchmarkTable(b, bounds.TableIV()) }

// BenchmarkFig1NaiveRegister reproduces Fig. 1's motivating violation
// (experiment E5): a zero-latency register is fast but not linearizable.
func BenchmarkFig1NaiveRegister(b *testing.B) {
	p := benchParams(3)
	violations := 0
	for i := 0; i < b.N; i++ {
		out, err := adversary.Figure1(p)
		if err != nil {
			b.Fatal(err)
		}
		if !out.Linearizable() {
			violations++
		}
	}
	b.ReportMetric(float64(violations)/float64(b.N), "violation-rate")
}

// BenchmarkFig3StandardShift exercises the standard time shift of §IV.A
// (experiment E6) on a recorded two-process run.
func BenchmarkFig3StandardShift(b *testing.B) {
	p := benchParams(2)
	r := figureRun(p, p.D-p.U/2, p.D-p.U/2)
	x := []model.Time{0, p.U / 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shifted, err := runs.Shift(r, x)
		if err != nil {
			b.Fatal(err)
		}
		if err := runs.Admissible(shifted); err != nil {
			b.Fatal("Fig. 3 shift should remain admissible:", err)
		}
	}
}

// BenchmarkFig4ModifiedShift exercises the modified shift (shift + chop,
// Lemma B.1) of §IV.B (experiment E7).
func BenchmarkFig4ModifiedShift(b *testing.B) {
	p := benchParams(2)
	p.Epsilon = p.U
	r := figureRun(p, p.D, p.D)
	x := []model.Time{0, p.U}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shifted, err := runs.Shift(r, x)
		if err != nil {
			b.Fatal(err)
		}
		delays, err := runs.UniformDelays(shifted, p.D)
		if err != nil {
			b.Fatal(err)
		}
		chopped, err := runs.Chop(shifted, delays, 0, 1, p.D-p.U)
		if err != nil {
			b.Fatal(err)
		}
		if err := runs.Admissible(chopped); err != nil {
			b.Fatal("Lemma B.1 violated:", err)
		}
	}
}

func figureRun(p model.Params, dij, dji model.Time) runs.Run {
	msec := model.Time(time.Millisecond)
	return runs.Run{
		Params: p,
		Views: []runs.TimedView{
			{Proc: 0, End: model.Infinity, Steps: []runs.Step{{RealTime: 0, Kind: "invoke"}}},
			{Proc: 1, End: model.Infinity, Steps: []runs.Step{{RealTime: 2 * msec, Kind: "invoke"}}},
		},
		Msgs: []runs.Message{
			{Seq: 0, From: 0, To: 1, SentAt: 0, RecvAt: dij},
			{Seq: 1, From: 1, To: 0, SentAt: 2 * msec, RecvAt: 2*msec + dji},
		},
	}
}

// BenchmarkThmC1LowerBound runs the Theorem C.1 construction (experiment
// E8): a premature RMW (latency just under d+m) must violate in the run
// family while the correct d+ε implementation passes.
func BenchmarkThmC1LowerBound(b *testing.B) {
	p := benchParams(3)
	bound := p.D + model.MinOf3(p.Epsilon, p.U, p.D/3)
	violations, correctOK := 0, 0
	for i := 0; i < b.N; i++ {
		outs, err := adversary.TheoremC1(adversary.C1Config{Params: p, OOPLatency: bound - 1})
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range outs {
			if !o.Linearizable() {
				violations++
				break
			}
		}
		outs, err = adversary.TheoremC1(adversary.C1Config{Params: p, OOPLatency: p.D + p.Epsilon})
		if err != nil {
			b.Fatal(err)
		}
		ok := true
		for _, o := range outs {
			ok = ok && o.Linearizable()
		}
		if ok {
			correctOK++
		}
	}
	b.ReportMetric(float64(violations)/float64(b.N), "premature-violation-rate")
	b.ReportMetric(float64(correctOK)/float64(b.N), "correct-pass-rate")
	b.ReportMetric(ms(bound), "lower-bound-ms")
}

// BenchmarkThmD1LowerBound runs the Theorem D.1 ring construction
// (experiment E9) for k = n = 4.
func BenchmarkThmD1LowerBound(b *testing.B) {
	p := benchParams(4)
	bound := bounds.PermuteLower(p.N, p.U)
	violations := 0
	for i := 0; i < b.N; i++ {
		outs, err := adversary.TheoremD1(adversary.D1Config{Params: p, MutatorLatency: bound - 1})
		if err != nil {
			b.Fatal(err)
		}
		if !outs[1].Linearizable() {
			violations++
		}
	}
	b.ReportMetric(float64(violations)/float64(b.N), "premature-violation-rate")
	b.ReportMetric(ms(bound), "lower-bound-ms")
}

// BenchmarkThmE1LowerBound runs the Theorem E.1 pair construction
// (experiment E10) with a pair latency just below d+m.
func BenchmarkThmE1LowerBound(b *testing.B) {
	p := benchParams(3)
	m := model.MinOf3(p.Epsilon, p.U, p.D/3)
	cfg := adversary.E1Config{Params: p, X: p.Epsilon + m/2, MutatorLatency: 0}
	violations := 0
	for i := 0; i < b.N; i++ {
		out, err := adversary.TheoremE1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !out.Linearizable() {
			violations++
		}
	}
	b.ReportMetric(float64(violations)/float64(b.N), "premature-violation-rate")
	b.ReportMetric(ms(cfg.PairLatency()), "pair-latency-ms")
	b.ReportMetric(ms(p.D+m), "lower-bound-ms")
}

// BenchmarkUpperBounds measures Algorithm 1's worst-case latencies against
// the §V.D formulas (experiment E11).
func BenchmarkUpperBounds(b *testing.B) {
	p := benchParams(4)
	var measured map[string]model.Time
	for i := 0; i < b.N; i++ {
		var err error
		measured, _, err = experiments.MeasureTable(bounds.TableI(), p, experiments.MeasureOptions{
			Seed: int64(i + 1), OpsPerProcess: 12, WorstCaseDelays: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ms(measured["write"]), "mutator-ms")
	b.ReportMetric(ms(p.Epsilon), "mutator-bound-ms")
	b.ReportMetric(ms(measured["read"]), "accessor-ms")
	b.ReportMetric(ms(p.D+p.Epsilon), "accessor-bound-ms")
	b.ReportMetric(ms(measured["read-modify-write"]), "oop-ms")
}

// BenchmarkBaselineVsFast compares Algorithm 1 against the folklore
// implementations (experiment E12).
func BenchmarkBaselineVsFast(b *testing.B) {
	p := benchParams(4)
	var cmp experiments.BaselineComparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = experiments.CompareBaselines(p, 0, int64(i+1), 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ms(cmp.Fast[types.OpWrite].Max), "fast-write-ms")
	b.ReportMetric(ms(cmp.AllOOP[types.OpWrite].Max), "alloop-write-ms")
	b.ReportMetric(ms(cmp.Centralized[types.OpWrite].Max), "central-write-ms")
	b.ReportMetric(ms(cmp.Fast[types.OpRMW].Max), "fast-rmw-ms")
	b.ReportMetric(ms(cmp.Centralized[types.OpRMW].Max), "central-rmw-ms")
}

// BenchmarkXTradeoff sweeps X (experiment E13) and reports the endpoints.
func BenchmarkXTradeoff(b *testing.B) {
	p := benchParams(4)
	var pts []experiments.TradeoffPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.XSweep(p, 5, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := pts[0], pts[len(pts)-1]
	b.ReportMetric(ms(first.Mutator), "mutator-at-x0-ms")
	b.ReportMetric(ms(first.Accessor), "accessor-at-x0-ms")
	b.ReportMetric(ms(last.Mutator), "mutator-at-xmax-ms")
	b.ReportMetric(ms(last.Accessor), "accessor-at-xmax-ms")
	b.ReportMetric(ms(first.Pair), "pair-ms")
}

// BenchmarkSkewVsN sweeps the cluster size (experiment E14): mutator
// latency tracks (1-1/n)u.
func BenchmarkSkewVsN(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var pts []experiments.SkewPoint
			for i := 0; i < b.N; i++ {
				var err error
				pts, err = experiments.NSweep(10*model.Time(time.Millisecond), 4*model.Time(time.Millisecond), n, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
			}
			last := pts[len(pts)-1]
			b.ReportMetric(ms(last.MeasuredMutator), "mutator-ms")
			b.ReportMetric(ms(last.OptimalSkew), "optimal-skew-ms")
		})
	}
}

// BenchmarkChecker measures the linearizability checker on an adversarial
// concurrent history (micro-benchmark; supports all E* experiments).
func BenchmarkChecker(b *testing.B) {
	p := benchParams(4)
	_, rep, err := experiments.MeasureTable(bounds.TableII(), p, experiments.MeasureOptions{
		Seed: 1, OpsPerProcess: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	dt := bounds.TableII().Object
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := check.Check(dt, rep.History); !res.Linearizable {
			b.Fatal("history should be linearizable")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulated operations per second
// of the Algorithm 1 cluster (micro-benchmark).
func BenchmarkSimulatorThroughput(b *testing.B) {
	p := benchParams(4)
	ops := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, rep, err := experiments.MeasureTable(bounds.TableI(), p, experiments.MeasureOptions{
			Seed: int64(i + 1), OpsPerProcess: 25,
		})
		if err != nil {
			b.Fatal(err)
		}
		ops += rep.History.Len()
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(ops)/sec, "sim-ops/s")
	}
	_ = sim.FixedDelay(0) // keep the sim import for figure helpers
}
